// Layer interface for the training-time CNN.
//
// Layers own their parameters and parameter gradients; the optimizer walks
// them through params(). Compute layers (Conv2D, Dense) additionally expose
// their weights in *matrix form* (rows = crossbar rows, cols = kernels),
// which is the representation the quantization and RRAM-mapping stages
// consume — see MatrixLayer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace sei::nn {

/// A trainable parameter and its gradient accumulator.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for a batch. `train` enables caching of
  /// whatever backward() needs.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Only valid after forward(..., train=true).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Registers trainable parameters (default: none).
  virtual void params(std::vector<ParamRef>& out) { (void)out; }

  virtual std::string name() const = 0;
};

/// Interface of layers whose computation is a matrix–vector product — the
/// layers that map onto RRAM crossbars. The weight matrix is [rows × cols]
/// with rows = flattened input patch length (S·S·C for conv, fan-in for FC)
/// and cols = number of kernels / output units, exactly the crossbar geometry
/// of Table 2 in the paper (25×12, 300×64, …).
class MatrixLayer {
 public:
  virtual ~MatrixLayer() = default;

  virtual int matrix_rows() const = 0;
  virtual int matrix_cols() const = 0;

  /// Row-major [rows × cols] weight matrix (mutable for re-scaling).
  virtual Tensor& weight_matrix() = 0;
  virtual const Tensor& weight_matrix() const = 0;

  /// Per-output bias vector of length cols.
  virtual Tensor& bias() = 0;
  virtual const Tensor& bias() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace sei::nn
