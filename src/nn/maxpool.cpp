#include "nn/maxpool.hpp"

namespace sei::nn {

Tensor MaxPool2x2::forward(const Tensor& input, bool train) {
  SEI_CHECK_MSG(input.ndim() == 4, "maxpool input must be NHWC");
  const int n = input.dim(0), h = input.dim(1), w = input.dim(2),
            c = input.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  SEI_CHECK_MSG(oh >= 1 && ow >= 1, "maxpool input too small");
  Tensor out({n, oh, ow, c});
  if (train) {
    argmax_.assign(out.numel(), 0);
    cached_in_ = input.shape();
  }
  const float* src = input.data();
  float* dst = out.data();
  std::size_t oidx = 0;
  for (int img = 0; img < n; ++img) {
    const std::size_t ibase = static_cast<std::size_t>(img) * h * w * c;
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        for (int ch = 0; ch < c; ++ch) {
          std::size_t best_idx =
              ibase + (static_cast<std::size_t>(2 * y) * w + 2 * x) * c + ch;
          float best = src[best_idx];
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const std::size_t idx =
                  ibase +
                  (static_cast<std::size_t>(2 * y + dy) * w + 2 * x + dx) * c +
                  ch;
              if (src[idx] > best) {
                best = src[idx];
                best_idx = idx;
              }
            }
          }
          dst[oidx] = best;
          if (train) argmax_[oidx] = static_cast<std::uint32_t>(best_idx);
          ++oidx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2x2::backward(const Tensor& grad_output) {
  SEI_CHECK_MSG(!argmax_.empty(), "maxpool: backward before forward");
  SEI_CHECK(grad_output.numel() == argmax_.size());
  Tensor grad_in(cached_in_);
  float* gi = grad_in.data();
  const float* go = grad_output.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gi[argmax_[i]] += go[i];
  return grad_in;
}

}  // namespace sei::nn
