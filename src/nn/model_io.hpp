// Model parameter (de)serialization.
//
// The file stores only parameter tensors (with shape headers); the network
// topology is reconstructed by the caller (workloads::make_networkN) and
// verified against the stored shapes on load.
#pragma once

#include <string>

#include "nn/network.hpp"

namespace sei::nn {

/// Writes all parameters of `net` to `path` (atomic replace).
void save_model(Network& net, const std::string& path);

/// Loads parameters into an already-constructed `net`; throws CheckError on
/// topology mismatch or corrupt file.
void load_model(Network& net, const std::string& path);

}  // namespace sei::nn
