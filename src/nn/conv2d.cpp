#include "nn/conv2d.hpp"

#include <cmath>
#include <cstring>

#include "nn/gemm.hpp"

namespace sei::nn {

Conv2D::Conv2D(int kernel, int in_channels, int out_channels, Rng& rng)
    : kernel_(kernel),
      in_channels_(in_channels),
      out_channels_(out_channels),
      weight_({kernel * kernel * in_channels, out_channels}),
      bias_({out_channels}),
      weight_grad_({kernel * kernel * in_channels, out_channels}),
      bias_grad_({out_channels}) {
  SEI_CHECK(kernel >= 1 && in_channels >= 1 && out_channels >= 1);
  const double fan_in = static_cast<double>(kernel * kernel * in_channels);
  const double std_dev = std::sqrt(2.0 / fan_in);
  for (float& w : weight_.flat())
    w = static_cast<float>(rng.gaussian(0.0, std_dev));
}

Tensor Conv2D::im2col(const Tensor& input, int kernel) {
  SEI_CHECK_MSG(input.ndim() == 4, "conv input must be NHWC");
  const int n = input.dim(0), h = input.dim(1), w = input.dim(2),
            c = input.dim(3);
  const int oh = h - kernel + 1, ow = w - kernel + 1;
  SEI_CHECK_MSG(oh >= 1 && ow >= 1, "input smaller than kernel");
  const int patch = kernel * kernel * c;
  Tensor cols({n * oh * ow, patch});
  float* dst = cols.data();
  const float* src = input.data();
  for (int img = 0; img < n; ++img) {
    const float* base = src + static_cast<std::size_t>(img) * h * w * c;
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        for (int di = 0; di < kernel; ++di) {
          const float* rowp = base + (static_cast<std::size_t>(y + di) * w + x) * c;
          std::memcpy(dst, rowp, static_cast<std::size_t>(kernel) * c * sizeof(float));
          dst += kernel * c;
        }
      }
    }
  }
  return cols;
}

Tensor Conv2D::forward(const Tensor& input, bool train) {
  SEI_CHECK_MSG(input.dim(3) == in_channels_,
                name() << ": expected " << in_channels_ << " channels, got "
                       << input.dim(3));
  const int n = input.dim(0), h = input.dim(1), w = input.dim(2);
  const int oh = h - kernel_ + 1, ow = w - kernel_ + 1;
  Tensor cols = im2col(input, kernel_);
  Tensor out({n, oh, ow, out_channels_});
  const int m = n * oh * ow;
  gemm(cols.data(), weight_.data(), out.data(), m, matrix_rows(),
       out_channels_);
  // Bias broadcast over positions.
  float* o = out.data();
  const float* b = bias_.data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < out_channels_; ++j) o[j] += b[j];
    o += out_channels_;
  }
  if (train) {
    cached_cols_ = std::move(cols);
    cached_in_ = input.shape();
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  SEI_CHECK_MSG(!cached_cols_.empty(), name() << ": backward before forward");
  const int n = cached_in_[0], h = cached_in_[1], w = cached_in_[2];
  const int oh = h - kernel_ + 1, ow = w - kernel_ + 1;
  const int m = n * oh * ow;
  SEI_CHECK(grad_output.numel() ==
            static_cast<std::size_t>(m) * out_channels_);

  // dW += colsᵀ · dOut ; db += column sums of dOut.
  gemm_at_b_accumulate(cached_cols_.data(), grad_output.data(),
                       weight_grad_.data(), m, matrix_rows(), out_channels_);
  const float* go = grad_output.data();
  float* bg = bias_grad_.data();
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < out_channels_; ++j) bg[j] += go[j];
    go += out_channels_;
  }

  // dCols = dOut · Wᵀ, then scatter-add back to input positions (col2im).
  Tensor grad_cols({m, matrix_rows()});
  gemm_a_bt(grad_output.data(), weight_.data(), grad_cols.data(), m,
            out_channels_, matrix_rows());

  Tensor grad_in(cached_in_);
  float* gi = grad_in.data();
  const float* gc = grad_cols.data();
  const int c = in_channels_;
  for (int img = 0; img < n; ++img) {
    float* base = gi + static_cast<std::size_t>(img) * h * w * c;
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        for (int di = 0; di < kernel_; ++di) {
          float* rowp = base + (static_cast<std::size_t>(y + di) * w + x) * c;
          for (int t = 0; t < kernel_ * c; ++t) rowp[t] += gc[t];
          gc += kernel_ * c;
        }
      }
    }
  }
  return grad_in;
}

void Conv2D::params(std::vector<ParamRef>& out) {
  out.push_back({&weight_, &weight_grad_, name() + ".weight"});
  out.push_back({&bias_, &bias_grad_, name() + ".bias"});
}

std::string Conv2D::name() const {
  return "conv" + std::to_string(kernel_) + "x" + std::to_string(kernel_) +
         "x" + std::to_string(in_channels_) + "-" +
         std::to_string(out_channels_);
}

}  // namespace sei::nn
