// Small row-major GEMM kernels sized for this library's workloads
// (K up to a few hundred, N up to a few hundred). The i-k-j loop order keeps
// the innermost loop contiguous over C's and B's rows so the compiler
// auto-vectorizes it.
#pragma once

#include <cstddef>

namespace sei::nn {

/// C[M×N] += A[M×K] · B[K×N]   (row-major, accumulate).
void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n);

/// C[M×N] = A[M×K] · B[K×N]   (row-major, overwrite).
void gemm(const float* a, const float* b, float* c, int m, int k, int n);

/// C[K×N] += Aᵀ[M×K] · B[M×N] — i.e. accumulate A-transposed times B, used
/// for weight gradients (A = im2col buffer, B = output gradient).
void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);

/// C[M×K] = A[M×N] · Bᵀ[K×N] — used for input gradients
/// (A = output gradient, B = weights).
void gemm_a_bt(const float* a, const float* b, float* c, int m, int n, int k);

}  // namespace sei::nn
