#include "nn/gemm.hpp"

#include <cstring>

namespace sei::nn {

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // im2col borders and ReLU outputs are sparse
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  std::memset(c, 0, static_cast<std::size_t>(m) * n * sizeof(float));
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  // c[p][j] += sum_i a[i][p] * b[i][j]
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    const float* brow = b + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, int m, int n, int k) {
  // c[i][p] = sum_j a[i][j] * b[p][j]
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * n;
    float* crow = c + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < k; ++p) {
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) acc += arow[j] * brow[j];
      crow[p] = acc;
    }
  }
}

}  // namespace sei::nn
