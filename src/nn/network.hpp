// Sequential network container.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/layer.hpp"
#include "nn/softmax.hpp"

namespace sei::nn {

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Appends a layer; returns a typed reference for further configuration.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input, bool train = false);

  /// Runs layers [first, last) only — used by the quantizer to re-evaluate
  /// suffixes of the network from cached intermediate activations.
  Tensor forward_range(const Tensor& input, std::size_t first,
                       std::size_t last, bool train = false);

  Tensor backward(const Tensor& grad_output);

  std::vector<ParamRef> params();

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// All layers implementing MatrixLayer, in network order — the layers that
  /// map to RRAM crossbars.
  std::vector<MatrixLayer*> matrix_layers();

  /// Index (into the layer sequence) of each MatrixLayer.
  std::vector<std::size_t> matrix_layer_indices() const;

  /// Classification error rate in percent over a labeled set, evaluated in
  /// mini-batches of `batch` images.
  double error_rate(const Tensor& images, std::span<const std::uint8_t> labels,
                    int batch = 64);

  /// Extracts images[begin:end) into a new batch tensor (NHWC).
  static Tensor slice_batch(const Tensor& images, int begin, int end);

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace sei::nn
