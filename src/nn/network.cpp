#include "nn/network.hpp"

#include <algorithm>
#include <cstring>

namespace sei::nn {

Tensor Network::forward(const Tensor& input, bool train) {
  return forward_range(input, 0, layers_.size(), train);
}

Tensor Network::forward_range(const Tensor& input, std::size_t first,
                              std::size_t last, bool train) {
  SEI_CHECK(first <= last && last <= layers_.size());
  Tensor x = input;
  for (std::size_t i = first; i < last; ++i)
    x = layers_[i]->forward(x, train);
  return x;
}

Tensor Network::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> out;
  for (auto& l : layers_) l->params(out);
  return out;
}

std::vector<MatrixLayer*> Network::matrix_layers() {
  std::vector<MatrixLayer*> out;
  for (auto& l : layers_)
    if (auto* m = dynamic_cast<MatrixLayer*>(l.get())) out.push_back(m);
  return out;
}

std::vector<std::size_t> Network::matrix_layer_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < layers_.size(); ++i)
    if (dynamic_cast<const MatrixLayer*>(layers_[i].get())) out.push_back(i);
  return out;
}

Tensor Network::slice_batch(const Tensor& images, int begin, int end) {
  SEI_CHECK(images.ndim() >= 1);
  SEI_CHECK(begin >= 0 && begin < end && end <= images.dim(0));
  std::vector<int> shape = images.shape();
  shape[0] = end - begin;
  std::size_t per_image = images.numel() / static_cast<std::size_t>(images.dim(0));
  Tensor out(shape);
  std::memcpy(out.data(), images.data() + static_cast<std::size_t>(begin) * per_image,
              static_cast<std::size_t>(end - begin) * per_image * sizeof(float));
  return out;
}

double Network::error_rate(const Tensor& images,
                           std::span<const std::uint8_t> labels, int batch) {
  const int n = images.dim(0);
  SEI_CHECK(labels.size() == static_cast<std::size_t>(n));
  int correct = 0;
  for (int begin = 0; begin < n; begin += batch) {
    const int end = std::min(n, begin + batch);
    Tensor logits = forward(slice_batch(images, begin, end), false);
    logits.reshape({end - begin,
                    static_cast<int>(logits.numel()) / (end - begin)});
    for (int i = 0; i < end - begin; ++i)
      if (argmax_row(logits, i) == labels[static_cast<std::size_t>(begin + i)])
        ++correct;
  }
  return 100.0 * (1.0 - static_cast<double>(correct) / n);
}

}  // namespace sei::nn
