// Dense row-major float tensor.
//
// Feature maps use NHWC layout: index = ((n*H + y)*W + x)*C + c. NHWC makes
// an im2col patch read the channels of one pixel contiguously, and it makes
// the im2col row ordering match the paper's crossbar row ordering
// (i, j, k) in Equ. (1): row = (di*S + dj)*C + c.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace sei::nn {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<int> shape);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  /// 1-D tensor wrapping a copy of `values`.
  static Tensor from_vector(std::vector<float> values);

  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  const std::vector<int>& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

  float& operator[](std::size_t i) { SEI_ASSERT(i < data_.size()); return data_[i]; }
  float operator[](std::size_t i) const { SEI_ASSERT(i < data_.size()); return data_[i]; }

  // Multi-index access (bounds-checked in debug builds).
  float& at(int a);
  float& at(int a, int b);
  float& at(int a, int b, int c);
  float& at(int a, int b, int c, int d);
  float at(int a) const { return const_cast<Tensor*>(this)->at(a); }
  float at(int a, int b) const { return const_cast<Tensor*>(this)->at(a, b); }
  float at(int a, int b, int c) const { return const_cast<Tensor*>(this)->at(a, b, c); }
  float at(int a, int b, int c, int d) const {
    return const_cast<Tensor*>(this)->at(a, b, c, d);
  }

  /// Reinterprets the shape; total element count must match.
  Tensor& reshape(std::vector<int> shape);

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Elementwise a*x + this.
  void axpy(float a, const Tensor& x);
  void scale(float a);

  float max_abs() const;
  float max() const;

  std::string shape_str() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Checks two shapes for equality with a readable error.
void check_same_shape(const Tensor& a, const Tensor& b, const char* what);

}  // namespace sei::nn
