// SGD-with-momentum trainer for the float CNNs of Table 2.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/rng.hpp"
#include "nn/network.hpp"

namespace sei::nn {

struct TrainConfig {
  int epochs = 6;
  int batch_size = 32;
  double learning_rate = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  double lr_decay = 0.7;     // multiplied into lr after each epoch
  std::uint64_t seed = 42;
  bool verbose = false;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;
  double train_error_pct = 0.0;
  double seconds = 0.0;
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config) : config_(config) {}

  /// Runs SGD over (images, labels); invokes `on_epoch` (if set) after each
  /// epoch. Returns the final epoch stats.
  EpochStats fit(Network& net, const Tensor& images,
                 std::span<const std::uint8_t> labels,
                 const std::function<void(const EpochStats&)>& on_epoch = {});

 private:
  TrainConfig config_;
};

}  // namespace sei::nn
