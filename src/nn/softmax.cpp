#include "nn/softmax.hpp"

#include <algorithm>
#include <cmath>

namespace sei::nn {

LossResult SoftmaxCrossEntropy::forward(const Tensor& logits,
                                        std::span<const std::uint8_t> labels) {
  SEI_CHECK(logits.ndim() == 2);
  const int n = logits.dim(0), k = logits.dim(1);
  SEI_CHECK(labels.size() == static_cast<std::size_t>(n));
  probs_ = logits;
  LossResult res;
  float* p = probs_.data();
  for (int i = 0; i < n; ++i, p += k) {
    float mx = p[0];
    int arg = 0;
    for (int j = 1; j < k; ++j)
      if (p[j] > mx) {
        mx = p[j];
        arg = j;
      }
    double z = 0.0;
    for (int j = 0; j < k; ++j) {
      p[j] = std::exp(p[j] - mx);
      z += p[j];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (int j = 0; j < k; ++j) p[j] *= inv;
    const int label = labels[static_cast<std::size_t>(i)];
    SEI_CHECK_MSG(label >= 0 && label < k, "label out of range");
    res.loss += -std::log(std::max(1e-12, static_cast<double>(p[label])));
    if (arg == label) ++res.correct;
  }
  res.loss /= std::max(1, n);
  return res;
}

Tensor SoftmaxCrossEntropy::backward(
    std::span<const std::uint8_t> labels) const {
  SEI_CHECK_MSG(!probs_.empty(), "softmax: backward before forward");
  const int n = probs_.dim(0), k = probs_.dim(1);
  Tensor grad = probs_;
  float* g = grad.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int i = 0; i < n; ++i, g += k) {
    g[labels[static_cast<std::size_t>(i)]] -= 1.0f;
    for (int j = 0; j < k; ++j) g[j] *= inv_n;
  }
  return grad;
}

int argmax_row(const Tensor& logits, int row) {
  const int k = logits.dim(1);
  const float* p = logits.data() + static_cast<std::size_t>(row) * k;
  return static_cast<int>(std::max_element(p, p + k) - p);
}

}  // namespace sei::nn
