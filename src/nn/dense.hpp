// Fully-connected layer: out = x·W + b, with x flattened to [N × fan_in].
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace sei::nn {

class Dense final : public Layer, public MatrixLayer {
 public:
  Dense(int fan_in, int fan_out, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void params(std::vector<ParamRef>& out) override;
  std::string name() const override;

  int matrix_rows() const override { return fan_in_; }
  int matrix_cols() const override { return fan_out_; }
  Tensor& weight_matrix() override { return weight_; }
  const Tensor& weight_matrix() const override { return weight_; }
  Tensor& bias() override { return bias_; }
  const Tensor& bias() const override { return bias_; }

 private:
  int fan_in_;
  int fan_out_;
  Tensor weight_;  // [fan_in × fan_out]
  Tensor bias_;    // [fan_out]
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;         // flattened [N × fan_in]
  std::vector<int> cached_in_;  // original input shape
};

}  // namespace sei::nn
