// Valid (no padding), stride-1 2-D convolution via im2col + GEMM, NHWC.
//
// The im2col matrix row ordering is (di, dj, c) — identical to the crossbar
// row ordering in Equ. (1) of the paper — so `weight_matrix()` is byte-for-
// byte the matrix that gets programmed into RRAM crossbars.
#pragma once

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace sei::nn {

class Conv2D final : public Layer, public MatrixLayer {
 public:
  /// kernel: S×S spatial, in_channels inputs, out_channels kernels.
  /// Weights use He-normal initialization (ReLU networks).
  Conv2D(int kernel, int in_channels, int out_channels, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void params(std::vector<ParamRef>& out) override;
  std::string name() const override;

  int matrix_rows() const override { return kernel_ * kernel_ * in_channels_; }
  int matrix_cols() const override { return out_channels_; }
  Tensor& weight_matrix() override { return weight_; }
  const Tensor& weight_matrix() const override { return weight_; }
  Tensor& bias() override { return bias_; }
  const Tensor& bias() const override { return bias_; }

  int kernel() const { return kernel_; }
  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }

  /// Extracts the im2col buffer for one batch: [N·OH·OW × S·S·C].
  static Tensor im2col(const Tensor& input, int kernel);

 private:
  int kernel_;
  int in_channels_;
  int out_channels_;
  Tensor weight_;  // [S·S·C × out_channels]
  Tensor bias_;    // [out_channels]
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_cols_;           // im2col of last training forward
  std::vector<int> cached_in_;   // input shape of last training forward
};

}  // namespace sei::nn
