#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace sei::nn {

namespace {
std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    SEI_CHECK_MSG(d > 0, "tensor dimensions must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor Tensor::from_vector(std::vector<float> values) {
  Tensor t;
  t.shape_ = {static_cast<int>(values.size())};
  t.data_ = std::move(values);
  return t;
}

int Tensor::dim(int i) const {
  SEI_CHECK_MSG(i >= 0 && i < ndim(), "dim " << i << " out of range for "
                                             << shape_str());
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(int a) {
  SEI_ASSERT(ndim() == 1);
  SEI_ASSERT(a >= 0 && a < shape_[0]);
  return data_[static_cast<std::size_t>(a)];
}

float& Tensor::at(int a, int b) {
  SEI_ASSERT(ndim() == 2);
  SEI_ASSERT(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1]);
  return data_[static_cast<std::size_t>(a) * shape_[1] + b];
}

float& Tensor::at(int a, int b, int c) {
  SEI_ASSERT(ndim() == 3);
  SEI_ASSERT(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1] && c >= 0 &&
             c < shape_[2]);
  return data_[(static_cast<std::size_t>(a) * shape_[1] + b) * shape_[2] + c];
}

float& Tensor::at(int a, int b, int c, int d) {
  SEI_ASSERT(ndim() == 4);
  SEI_ASSERT(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1] && c >= 0 &&
             c < shape_[2] && d >= 0 && d < shape_[3]);
  return data_[((static_cast<std::size_t>(a) * shape_[1] + b) * shape_[2] + c) *
                   shape_[3] +
               d];
}

Tensor& Tensor::reshape(std::vector<int> shape) {
  SEI_CHECK_MSG(shape_numel(shape) == data_.size(),
                "reshape " << shape_str() << " to incompatible shape");
  shape_ = std::move(shape);
  return *this;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::axpy(float a, const Tensor& x) {
  check_same_shape(*this, x, "axpy");
  const float* xs = x.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += a * xs[i];
}

void Tensor::scale(float a) {
  for (float& v : data_) v *= a;
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

float Tensor::max() const {
  SEI_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* what) {
  SEI_CHECK_MSG(a.shape() == b.shape(), what << ": shape mismatch "
                                             << a.shape_str() << " vs "
                                             << b.shape_str());
}

}  // namespace sei::nn
