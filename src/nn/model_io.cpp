#include "nn/model_io.hpp"

#include "common/io.hpp"

namespace sei::nn {

namespace {
constexpr std::uint32_t kMagic = 0x5e1cadef;
// v2: file carries the common/io CRC32 trailer (torn writes are detected
// and treated as cache misses instead of loaded).
constexpr std::uint32_t kVersion = 2;
}  // namespace

void save_model(Network& net, const std::string& path) {
  auto params = net.params();
  BinaryWriter w(path);
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_u64(params.size());
  for (const auto& p : params) {
    w.write_string(p.name);
    const auto& shape = p.value->shape();
    w.write_u64(shape.size());
    for (int d : shape) w.write_i32(d);
    w.write_f32_vec({p.value->flat().begin(), p.value->flat().end()});
  }
  w.commit();
}

void load_model(Network& net, const std::string& path) {
  auto params = net.params();
  BinaryReader r(path);
  r.verify_crc();
  SEI_CHECK_MSG(r.read_u32() == kMagic, "not a model file: " << path);
  SEI_CHECK_MSG(r.read_u32() == kVersion, "unsupported model version");
  const std::uint64_t count = r.read_u64();
  SEI_CHECK_MSG(count == params.size(),
                "model has " << count << " tensors, network expects "
                             << params.size());
  for (auto& p : params) {
    const std::string name = r.read_string();
    SEI_CHECK_MSG(name == p.name, "tensor order mismatch: file has '"
                                      << name << "', network expects '"
                                      << p.name << "'");
    const std::uint64_t ndim = r.read_u64();
    SEI_CHECK_MSG(ndim <= 8, "corrupt model file: tensor '"
                                 << name << "' claims " << ndim
                                 << " dimensions");
    std::vector<int> shape(ndim);
    for (auto& d : shape) {
      d = r.read_i32();
      SEI_CHECK_MSG(d > 0, "corrupt model file: non-positive dimension in '"
                               << name << "'");
    }
    SEI_CHECK_MSG(shape == p.value->shape(),
                  "shape mismatch for tensor '" << name << "'");
    const std::vector<float> data = r.read_f32_vec();
    SEI_CHECK_MSG(data.size() == p.value->numel(),
                  "corrupt model file: tensor '"
                      << name << "' holds " << data.size() << " values, shape "
                      << "needs " << p.value->numel());
    std::copy(data.begin(), data.end(), p.value->data());
  }
  SEI_CHECK_MSG(r.remaining() == 0,
                "corrupt model file: " << r.remaining()
                                       << " trailing bytes in " << path);
}

}  // namespace sei::nn
