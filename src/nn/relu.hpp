// Rectified linear unit. The paper's quantization folds this monotone
// non-linearity into the sense-amp threshold; in the float network it is an
// ordinary elementwise layer.
#pragma once

#include "nn/layer.hpp"

namespace sei::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor mask_;  // 1 where input > 0
};

}  // namespace sei::nn
