// 2×2, stride-2 max pooling (NHWC). After 1-bit quantization this layer
// degenerates to a logical OR of bits — see quant::BinaryNetwork.
#pragma once

#include "nn/layer.hpp"

namespace sei::nn {

class MaxPool2x2 final : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "maxpool2x2"; }

  /// Output spatial size for a given input size (floor division).
  static int out_size(int in_size) { return in_size / 2; }

 private:
  std::vector<std::uint32_t> argmax_;  // flat input index per output element
  std::vector<int> cached_in_;
};

}  // namespace sei::nn
