#include "nn/dense.hpp"

#include <cmath>

#include "nn/gemm.hpp"

namespace sei::nn {

Dense::Dense(int fan_in, int fan_out, Rng& rng)
    : fan_in_(fan_in),
      fan_out_(fan_out),
      weight_({fan_in, fan_out}),
      bias_({fan_out}),
      weight_grad_({fan_in, fan_out}),
      bias_grad_({fan_out}) {
  SEI_CHECK(fan_in >= 1 && fan_out >= 1);
  const double std_dev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (float& w : weight_.flat())
    w = static_cast<float>(rng.gaussian(0.0, std_dev));
}

Tensor Dense::forward(const Tensor& input, bool train) {
  const int n = input.dim(0);
  SEI_CHECK_MSG(input.numel() == static_cast<std::size_t>(n) * fan_in_,
                name() << ": input size mismatch " << input.shape_str());
  Tensor flat = input;
  flat.reshape({n, fan_in_});
  Tensor out({n, fan_out_});
  gemm(flat.data(), weight_.data(), out.data(), n, fan_in_, fan_out_);
  float* o = out.data();
  const float* b = bias_.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < fan_out_; ++j) o[j] += b[j];
    o += fan_out_;
  }
  if (train) {
    cached_in_ = input.shape();
    cached_input_ = std::move(flat);
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  SEI_CHECK_MSG(!cached_input_.empty(), name() << ": backward before forward");
  const int n = cached_input_.dim(0);
  SEI_CHECK(grad_output.numel() == static_cast<std::size_t>(n) * fan_out_);

  gemm_at_b_accumulate(cached_input_.data(), grad_output.data(),
                       weight_grad_.data(), n, fan_in_, fan_out_);
  const float* go = grad_output.data();
  float* bg = bias_grad_.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < fan_out_; ++j) bg[j] += go[j];
    go += fan_out_;
  }

  Tensor grad_in({n, fan_in_});
  gemm_a_bt(grad_output.data(), weight_.data(), grad_in.data(), n, fan_out_,
            fan_in_);
  grad_in.reshape(cached_in_);
  return grad_in;
}

void Dense::params(std::vector<ParamRef>& out) {
  out.push_back({&weight_, &weight_grad_, name() + ".weight"});
  out.push_back({&bias_, &bias_grad_, name() + ".bias"});
}

std::string Dense::name() const {
  return "fc" + std::to_string(fan_in_) + "-" + std::to_string(fan_out_);
}

}  // namespace sei::nn
