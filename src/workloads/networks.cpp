#include "workloads/networks.hpp"

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/maxpool.hpp"
#include "nn/relu.hpp"

namespace sei::workloads {

namespace {

quant::StageSpec conv(int kernel, int out_channels, bool pool) {
  quant::StageSpec s;
  s.kind = quant::StageSpec::Kind::Conv;
  s.kernel = kernel;
  s.out_channels = out_channels;
  s.pool_after = pool;
  return s;
}

quant::StageSpec fc(int out) {
  quant::StageSpec s;
  s.kind = quant::StageSpec::Kind::Fc;
  s.out_channels = out;
  return s;
}

}  // namespace

Workload network1() {
  Workload w;
  w.topo.name = "network1";
  w.topo.stages = {conv(5, 12, true), conv(5, 64, true), fc(10)};
  w.train.epochs = 8;
  w.train.batch_size = 32;
  w.train.learning_rate = 0.05;
  w.train.seed = 1001;
  return w;
}

Workload network2() {
  Workload w;
  w.topo.name = "network2";
  w.topo.stages = {conv(3, 4, true), conv(3, 8, true), fc(10)};
  w.train.epochs = 10;
  w.train.batch_size = 32;
  w.train.learning_rate = 0.05;
  w.train.seed = 1002;
  return w;
}

Workload network3() {
  Workload w;
  w.topo.name = "network3";
  w.topo.stages = {conv(3, 6, true), conv(3, 12, true), fc(10)};
  w.train.epochs = 10;
  w.train.batch_size = 32;
  w.train.learning_rate = 0.05;
  w.train.seed = 1003;
  return w;
}

Workload mlp() {
  Workload w;
  w.topo.name = "mlp";
  w.topo.stages = {fc(300), fc(100), fc(10)};
  w.train.epochs = 8;
  w.train.batch_size = 32;
  w.train.learning_rate = 0.05;
  w.train.seed = 1004;
  return w;
}

Workload workload_by_name(const std::string& name) {
  if (name == "network1") return network1();
  if (name == "network2") return network2();
  if (name == "network3") return network3();
  if (name == "mlp") return mlp();
  SEI_CHECK_MSG(false, "unknown workload: " << name);
  return {};
}

nn::Network build_float_network(const quant::Topology& topo,
                                std::uint64_t seed) {
  Rng rng(seed);
  nn::Network net;
  const auto geoms = quant::resolve_geometry(topo);
  for (std::size_t i = 0; i < geoms.size(); ++i) {
    const auto& g = geoms[i];
    const bool final_stage = i + 1 == geoms.size();
    if (g.kind == quant::StageSpec::Kind::Conv) {
      net.add<nn::Conv2D>(g.kernel, g.in_ch, g.cols, rng);
      if (!final_stage) net.add<nn::ReLU>();
      if (g.pool_after) net.add<nn::MaxPool2x2>();
    } else {
      net.add<nn::Dense>(g.rows, g.cols, rng);
      if (!final_stage) net.add<nn::ReLU>();
    }
  }
  return net;
}

}  // namespace sei::workloads
