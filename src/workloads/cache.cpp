#include "workloads/cache.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/io.hpp"
#include "common/timer.hpp"
#include "data/idx_loader.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/model_io.hpp"

#ifndef SEI_DEFAULT_CACHE_DIR
#define SEI_DEFAULT_CACHE_DIR "models"
#endif

namespace sei::workloads {

namespace {
constexpr std::uint32_t kQnetMagic = 0x5e1c0de5;
constexpr int kTrainImages = 12000;
constexpr int kTestImages = 2000;
constexpr std::uint64_t kDataSeed = 20160605;
}  // namespace

std::string cache_dir() {
  const char* env = std::getenv("SEI_CACHE_DIR");
  std::string dir = env && *env ? env : SEI_DEFAULT_CACHE_DIR;
  ensure_directory(dir);
  return dir;
}

data::DataBundle load_default_data(bool verbose) {
  if (const char* mnist = std::getenv("MNIST_DIR"); mnist && *mnist) {
    if (auto bundle = data::load_mnist_dir(mnist)) {
      if (verbose)
        std::printf("data: real MNIST from %s (%d train / %d test)\n", mnist,
                    bundle->train.size(), bundle->test.size());
      return std::move(*bundle);
    }
    std::printf("warning: MNIST_DIR=%s lacks the IDX files; "
                "falling back to synthetic digits\n", mnist);
  }
  const std::string dir = cache_dir();
  const std::string train_path = dir + "/synthetic_train.ds";
  const std::string test_path = dir + "/synthetic_test.ds";
  data::DataBundle b;
  b.source = "synthetic:" + std::to_string(kDataSeed);
  if (file_exists(train_path) && file_exists(test_path)) {
    // A dataset cache that fails its CRC (torn write, stale format) is
    // regenerated, never loaded.
    try {
      b.train = data::load_dataset(train_path);
      b.test = data::load_dataset(test_path);
      return b;
    } catch (const std::exception& e) {
      std::printf("warning: ignoring unreadable dataset cache (%s); "
                  "regenerating\n", e.what());
    }
  }
  if (verbose) std::printf("data: generating synthetic digits…\n");
  b = data::synthetic_bundle(kTrainImages, kTestImages, kDataSeed);
  data::save_dataset(b.train, train_path);
  data::save_dataset(b.test, test_path);
  return b;
}

data::DataBundle load_small_data(int train_n, int test_n,
                                 std::uint64_t seed) {
  return data::synthetic_bundle(train_n, test_n, seed);
}

nn::Network load_or_train(const Workload& wl, const data::DataBundle& data,
                          bool verbose) {
  nn::Network net = build_float_network(wl.topo, wl.train.seed);
  const std::string path = cache_dir() + "/" + wl.topo.name + ".model";
  if (file_exists(path)) {
    // A cache that fails validation (truncated, stale format, wrong
    // network) is a miss, not a fatal error: retrain and overwrite it.
    try {
      nn::load_model(net, path);
      return net;
    } catch (const std::exception& e) {
      std::printf("warning: ignoring unreadable model cache %s (%s); "
                  "retraining\n", path.c_str(), e.what());
      net = build_float_network(wl.topo, wl.train.seed);
    }
  }
  if (verbose)
    std::printf("training %s (%d epochs, %d images)…\n",
                wl.topo.name.c_str(), wl.train.epochs, data.train.size());
  Timer t;
  nn::TrainConfig tc = wl.train;
  tc.verbose = verbose;
  nn::Trainer(tc).fit(net, data.train.images, data.train.label_span());
  if (verbose)
    std::printf("trained %s in %.0fs\n", wl.topo.name.c_str(), t.seconds());
  nn::save_model(net, path);
  return net;
}

void save_qnetwork(const quant::QNetwork& q, const std::string& path) {
  BinaryWriter w(path);
  w.write_u32(kQnetMagic);
  w.write_string(q.name);
  w.write_u64(q.layers.size());
  for (const auto& l : q.layers) {
    w.write_i32(l.geom.rows);
    w.write_i32(l.geom.cols);
    w.write_f32(l.threshold);
    w.write_u32(l.binarize ? 1 : 0);
    w.write_f32_vec({l.weight.flat().begin(), l.weight.flat().end()});
    w.write_f32_vec({l.bias.flat().begin(), l.bias.flat().end()});
  }
  w.commit();
}

quant::QNetwork load_qnetwork(const std::string& path,
                              const quant::Topology& topo) {
  BinaryReader r(path);
  r.verify_crc();
  SEI_CHECK_MSG(r.read_u32() == kQnetMagic, "not a qnet file: " << path);
  quant::QNetwork q;
  q.name = r.read_string();
  SEI_CHECK_MSG(q.name == topo.name, "qnet/topology name mismatch");
  const std::uint64_t n = r.read_u64();
  const auto geoms = quant::resolve_geometry(topo);
  SEI_CHECK_MSG(n == geoms.size(), "qnet stage count mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    quant::QLayer l;
    l.geom = geoms[i];
    const int rows = r.read_i32();
    const int cols = r.read_i32();
    SEI_CHECK_MSG(rows == l.geom.rows && cols == l.geom.cols,
                  "qnet stage " << i << " shape mismatch");
    l.threshold = r.read_f32();
    l.binarize = r.read_u32() != 0;
    std::vector<float> wv = r.read_f32_vec();
    std::vector<float> bv = r.read_f32_vec();
    l.weight = nn::Tensor({rows, cols});
    SEI_CHECK(wv.size() == l.weight.numel());
    std::copy(wv.begin(), wv.end(), l.weight.data());
    l.bias = nn::Tensor::from_vector(std::move(bv));
    SEI_CHECK(static_cast<int>(l.bias.numel()) == cols);
    q.layers.push_back(std::move(l));
  }
  return q;
}

quant::QuantizationResult load_or_quantize(const Workload& wl,
                                           nn::Network& float_net,
                                           const data::DataBundle& data,
                                           const quant::SearchConfig& cfg,
                                           bool verbose) {
  const std::string path = cache_dir() + "/" + wl.topo.name + ".qnet";
  quant::QuantizationResult result;
  if (file_exists(path)) {
    try {
      result.qnet = load_qnetwork(path, wl.topo);
      // Keep the float network's matrix layers in sync with the cached
      // (re-scaled) weights so float-tail evaluations remain meaningful.
      auto mats = float_net.matrix_layers();
      SEI_CHECK(mats.size() == result.qnet.layers.size());
      for (std::size_t i = 0; i < mats.size(); ++i) {
        mats[i]->weight_matrix() = result.qnet.layers[i].weight;
        mats[i]->bias() = result.qnet.layers[i].bias;
      }
      return result;
    } catch (const std::exception& e) {
      std::printf("warning: ignoring unreadable qnet cache %s (%s); "
                  "re-quantizing\n", path.c_str(), e.what());
      result = {};
    }
  }
  if (verbose)
    std::printf("quantizing %s (Algorithm 1, %d search images)…\n",
                wl.topo.name.c_str(),
                std::min(cfg.max_search_images, data.train.size()));
  Timer t;
  result = quant::quantize_network(float_net, wl.topo, data.train, cfg);
  if (verbose)
    std::printf("quantized %s in %.0fs\n", wl.topo.name.c_str(), t.seconds());
  save_qnetwork(result.qnet, path);
  return result;
}

}  // namespace sei::workloads
