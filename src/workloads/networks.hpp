// The three 4-layer CNNs of Table 2 and the float-network builder.
#pragma once

#include <string>

#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "quant/qnet.hpp"

namespace sei::workloads {

struct Workload {
  quant::Topology topo;
  nn::TrainConfig train;
};

/// Network 1: conv 5×5×12 → pool → conv 5×5×64 → pool → fc 1024×10
/// (weight matrices 25×12, 300×64, 1024×10).
Workload network1();

/// Network 2: conv 3×3×4 → pool → conv 3×3×8 → pool → fc 200×10.
Workload network2();

/// Network 3: conv 3×3×6 → pool → conv 3×3×12 → pool → fc 300×10.
Workload network3();

/// Extension workload: a binary-activation MLP (784→300→100→10), the
/// network family of Kim et al. [10] the related-work section discusses.
/// Exercises hidden fully-connected stages (conv-free SEI mapping).
Workload mlp();

/// Lookup by name ("network1" | "network2" | "network3" | "mlp").
Workload workload_by_name(const std::string& name);

/// Materializes the float training network for a topology:
/// Conv2D+ReLU(+MaxPool) per conv stage, Dense for the classifier.
nn::Network build_float_network(const quant::Topology& topo,
                                std::uint64_t seed);

}  // namespace sei::workloads
