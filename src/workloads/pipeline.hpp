// End-to-end pipeline shared by benches, examples and integration tests:
// dataset → float training → Algorithm 1 quantization → hardware mapping.
#pragma once

#include "core/dyn_opt.hpp"
#include "core/sei_network.hpp"
#include "workloads/cache.hpp"

namespace sei::workloads {

struct PipelineOptions {
  quant::SearchConfig search;  // Algorithm 1 settings
  bool verbose = false;
};

/// Everything the experiments need for one workload.
struct Artifacts {
  Workload wl;
  nn::Network float_net;      // trained, re-scaled (Algorithm 1)
  quant::QNetwork qnet;       // quantized network with thresholds

  // Test error of the float network, measured BEFORE Algorithm 1: the
  // re-scaling step divides each hidden layer's weights and bias by its max
  // output, which changes the relative weight/bias scale of deeper layers,
  // so the mutated float network is no longer the accuracy baseline.
  double float_test_error_pct = 0.0;

  double quant_error(const data::Dataset& d) const {
    return qnet.error_rate(d);
  }
};

/// Trains (or loads) and quantizes (or loads) the named workload.
Artifacts prepare_workload(const std::string& name,
                           const data::DataBundle& data,
                           const PipelineOptions& opts = {});

/// Builds an SEI hardware simulation of the artifacts' quantized network
/// and (optionally) runs the dynamic-threshold optimization on the
/// training set. Returns the network; `dyn_out` (if non-null) receives the
/// optimization record.
core::SeiNetwork make_sei_network(const Artifacts& art,
                                  const core::HardwareConfig& cfg,
                                  const data::DataBundle& data,
                                  bool optimize_dyn_threshold,
                                  core::DynThreshResult* dyn_out = nullptr);

}  // namespace sei::workloads
