// Train-or-load caching for datasets, float models and quantized networks.
//
// The cache directory defaults to <repo>/models (compile-time constant) and
// can be overridden with the SEI_CACHE_DIR environment variable. All files
// are written atomically; deleting the directory forces full retraining.
#pragma once

#include <string>

#include "data/dataset.hpp"
#include "quant/threshold_search.hpp"
#include "workloads/networks.hpp"

namespace sei::workloads {

/// Resolved cache directory (created on first use).
std::string cache_dir();

/// The experiment dataset: real MNIST if MNIST_DIR is set, otherwise the
/// synthetic substitute (10k train / 2k test), cached on disk.
data::DataBundle load_default_data(bool verbose = false);

/// Smaller bundles for tests.
data::DataBundle load_small_data(int train_n, int test_n,
                                 std::uint64_t seed = 99);

/// Trains (or loads) the float network for a workload.
nn::Network load_or_train(const Workload& wl, const data::DataBundle& data,
                          bool verbose = false);

/// Runs (or loads) Algorithm 1 for a workload. `float_net` must be the
/// network returned by load_or_train for the same workload; on a cache hit
/// its weights are replaced by the cached re-scaled ones so that float and
/// quantized representations stay in sync.
quant::QuantizationResult load_or_quantize(const Workload& wl,
                                           nn::Network& float_net,
                                           const data::DataBundle& data,
                                           const quant::SearchConfig& cfg,
                                           bool verbose = false);

/// Serialization used by the cache (exposed for tests).
void save_qnetwork(const quant::QNetwork& q, const std::string& path);
quant::QNetwork load_qnetwork(const std::string& path,
                              const quant::Topology& topo);

}  // namespace sei::workloads
