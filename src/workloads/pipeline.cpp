#include "workloads/pipeline.hpp"

#include "common/io.hpp"

namespace sei::workloads {

namespace {
constexpr std::uint32_t kMetricsMagic = 0x5e1e77ac;

/// The float test error is cached next to the model so bench re-runs skip
/// the full-precision evaluation of the big networks.
double cached_float_error(const Workload& wl, nn::Network& net,
                          const data::DataBundle& data) {
  const std::string path = cache_dir() + "/" + wl.topo.name + ".metrics";
  if (file_exists(path)) {
    // Stale or truncated metrics caches are recomputed, never fatal.
    try {
      BinaryReader r(path);
      r.verify_crc();
      if (r.read_u32() == kMetricsMagic) return r.read_f64();
    } catch (const std::exception&) {
    }
  }
  const double err = net.error_rate(data.test.images, data.test.label_span());
  BinaryWriter w(path);
  w.write_u32(kMetricsMagic);
  w.write_f64(err);
  w.commit();
  return err;
}
}  // namespace

Artifacts prepare_workload(const std::string& name,
                           const data::DataBundle& data,
                           const PipelineOptions& opts) {
  Artifacts art;
  art.wl = workload_by_name(name);
  art.float_net = load_or_train(art.wl, data, opts.verbose);
  // Must run before load_or_quantize: quantization re-scales the weights.
  art.float_test_error_pct = cached_float_error(art.wl, art.float_net, data);
  quant::QuantizationResult q = load_or_quantize(
      art.wl, art.float_net, data, opts.search, opts.verbose);
  art.qnet = std::move(q.qnet);
  return art;
}

core::SeiNetwork make_sei_network(const Artifacts& art,
                                  const core::HardwareConfig& cfg,
                                  const data::DataBundle& data,
                                  bool optimize_dyn_threshold,
                                  core::DynThreshResult* dyn_out) {
  core::SeiNetwork net(art.qnet, cfg);
  if (optimize_dyn_threshold && cfg.split_dynamic_threshold) {
    core::DynThreshResult r =
        core::optimize_dynamic_threshold(net, data.train);
    if (dyn_out) *dyn_out = r;
  }
  return net;
}

}  // namespace sei::workloads
