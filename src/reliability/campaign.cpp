#include "reliability/campaign.hpp"

#include <algorithm>
#include <limits>

#include <cmath>

#include "common/io.hpp"
#include "common/signals.hpp"
#include "exec/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"

namespace sei::reliability {

Stat summarize(const std::vector<double>& xs) {
  Stat s;
  if (xs.empty()) {
    s.mean = s.min = s.max = std::numeric_limits<double>::quiet_NaN();
    return s;
  }
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  return s;
}

std::uint64_t trial_seed(const CampaignConfig& cfg, int point_idx,
                         int trial) {
  // splitmix64 of a unique (seed, point, trial) encoding: well-separated
  // streams without any coupling between neighbouring points/trials.
  std::uint64_t state = cfg.seed +
                        static_cast<std::uint64_t>(point_idx) * 1000003ULL +
                        static_cast<std::uint64_t>(trial);
  return splitmix64(state);
}

core::HardwareConfig trial_hardware(const CampaignConfig& cfg,
                                    const FaultPoint& p,
                                    std::uint64_t seed, bool repaired) {
  core::HardwareConfig hw = cfg.base;
  hw.seed = seed;
  hw.device.stuck_fraction = p.stuck_fraction;
  hw.device.program_sigma = p.program_sigma;
  hw.device.read_noise_sigma = p.read_noise_sigma;
  if (p.drift_t_s > 0.0) {
    hw.device.drift_nu = cfg.drift_nu;
    hw.device.drift_nu_sigma = cfg.drift_nu_sigma;
    hw.device.drift_t_s = p.drift_t_s;
  }
  hw.spare_row_fraction = repaired ? cfg.spare_row_fraction : 0.0;
  return hw;
}

CampaignResult run_campaign(const quant::QNetwork& qnet,
                            const data::Dataset& eval,
                            const data::Dataset& calib,
                            const CampaignConfig& cfg) {
  SEI_CHECK_MSG(cfg.trials >= 1, "campaign needs at least one trial");
  SEI_CHECK_MSG(!cfg.points.empty(), "campaign needs at least one point");

  CampaignResult result;
  {
    core::SeiNetwork healthy(qnet, cfg.base);
    result.healthy_error_pct = healthy.error_rate(eval, cfg.eval_images);
  }

  // Monte-Carlo sweep: every (point, trial) pair is independent — its seed
  // comes from trial_seed alone — so the flattened grid runs in parallel
  // into per-trial slots. Aggregation below walks the slots in (point,
  // trial) order, reproducing the serial statistics bit for bit. The
  // error_rate calls inside each trial detect they are nested and run
  // inline on the owning worker.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const int n_points = static_cast<int>(cfg.points.size());
  std::vector<TrialResult> slots(
      static_cast<std::size_t>(n_points) * cfg.trials);
  auto& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& trials_done =
      reg.counter("reliability_trials_total{status=\"completed\"}");
  telemetry::Counter& trials_skipped =
      reg.counter("reliability_trials_total{status=\"skipped\"}");
  exec::parallel_for(
      n_points * cfg.trials,
      [&](int idx) {
        telemetry::Span span("reliability.trial");
        const int pi = idx / cfg.trials;
        const int t = idx % cfg.trials;
        const FaultPoint& point = cfg.points[static_cast<std::size_t>(pi)];
        TrialResult tr;
        tr.seed = trial_seed(cfg, pi, t);
        if (shutdown_requested()) {
          trials_skipped.add();
          // Graceful SIGINT/SIGTERM: skip the remaining trials; the
          // aggregation below drops them so the partial JSON stays valid.
          tr.faulty_error_pct = nan;
          slots[static_cast<std::size_t>(idx)] = tr;
          return;
        }

        {
          const auto hw = trial_hardware(cfg, point, tr.seed, false);
          core::SeiNetwork net(qnet, hw);
          tr.faulty_error_pct = net.error_rate(eval, cfg.eval_images);
        }

        if (cfg.repair) {
          const auto hw = trial_hardware(cfg, point, tr.seed, true);
          core::SeiNetwork net(qnet, hw,
                               make_repair_hook(cfg.repair_cfg, &tr.repair));
          tr.pre_recalib_error_pct = net.error_rate(eval, cfg.eval_images);
          recalibrate_thresholds(net, calib, cfg.calib_cfg);
          tr.repaired_error_pct = net.error_rate(eval, cfg.eval_images);
        } else {
          tr.pre_recalib_error_pct = nan;
          tr.repaired_error_pct = nan;
        }
        trials_done.add();
        slots[static_cast<std::size_t>(idx)] = tr;
      },
      nullptr, /*grain=*/1);

  for (int pi = 0; pi < n_points; ++pi) {
    PointResult pr;
    pr.point = cfg.points[static_cast<std::size_t>(pi)];
    std::vector<double> faulty_errs, repaired_errs;
    for (int t = 0; t < cfg.trials; ++t) {
      const TrialResult& tr =
          slots[static_cast<std::size_t>(pi) * cfg.trials + t];
      if (std::isnan(tr.faulty_error_pct)) continue;  // skipped on shutdown
      faulty_errs.push_back(tr.faulty_error_pct);
      if (cfg.repair) {
        repaired_errs.push_back(tr.repaired_error_pct);
        pr.repair += tr.repair;
      }
      pr.trials.push_back(tr);
    }
    if (pr.trials.empty()) continue;  // entirely skipped on shutdown
    pr.faulty = summarize(faulty_errs);
    pr.repaired = summarize(repaired_errs);
    result.points.push_back(std::move(pr));
  }
  return result;
}

namespace {

void write_stat(JsonWriter& j, const std::string& key, const Stat& s) {
  j.key(key);
  j.begin_object();
  j.kv("mean", s.mean);
  j.kv("min", s.min);
  j.kv("max", s.max);
  j.end_object();
}

void write_repair(JsonWriter& j, const std::string& key,
                  const RepairReport& r) {
  j.key(key);
  j.begin_object();
  j.kv("crossbars", static_cast<long long>(r.crossbars));
  j.kv("faults_found", static_cast<long long>(r.faults_found));
  j.kv("cells_retried", static_cast<long long>(r.cells_retried));
  j.kv("cells_recovered", static_cast<long long>(r.cells_recovered));
  j.kv("rows_remapped", static_cast<long long>(r.rows_remapped));
  j.kv("rows_unrepairable", static_cast<long long>(r.rows_unrepairable));
  j.kv("cell_writes", r.cell_writes);
  j.end_object();
}

}  // namespace

void write_campaign_json(const CampaignResult& result,
                         const CampaignConfig& cfg, const std::string& path) {
  JsonWriter j(path);
  j.begin_object();
  j.kv("schema", "sei-reliability-campaign-v1");
  j.kv("seed", static_cast<long long>(cfg.seed));
  j.kv("trials", static_cast<long long>(cfg.trials));
  j.kv("eval_images", static_cast<long long>(cfg.eval_images));
  j.kv("repair_enabled", cfg.repair);
  j.kv("interrupted", shutdown_requested());
  j.kv("spare_row_fraction", cfg.spare_row_fraction);
  j.kv("drift_nu", cfg.drift_nu);
  j.kv("drift_nu_sigma", cfg.drift_nu_sigma);
  j.kv("healthy_error_pct", result.healthy_error_pct);

  j.key("points");
  j.begin_array();
  for (const PointResult& pr : result.points) {
    j.begin_object();
    j.kv("label", pr.point.label);
    j.kv("stuck_fraction", pr.point.stuck_fraction);
    j.kv("program_sigma", pr.point.program_sigma);
    j.kv("read_noise_sigma", pr.point.read_noise_sigma);
    j.kv("drift_t_s", pr.point.drift_t_s);
    write_stat(j, "faulty_error_pct", pr.faulty);
    write_stat(j, "repaired_error_pct", pr.repaired);
    write_repair(j, "repair", pr.repair);
    j.key("trials");
    j.begin_array();
    for (const TrialResult& tr : pr.trials) {
      j.begin_object();
      j.kv("seed", static_cast<long long>(tr.seed));
      j.kv("faulty_error_pct", tr.faulty_error_pct);
      j.kv("pre_recalib_error_pct", tr.pre_recalib_error_pct);
      j.kv("repaired_error_pct", tr.repaired_error_pct);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.commit();
}

}  // namespace sei::reliability
