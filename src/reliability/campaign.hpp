// Monte-Carlo fault-injection campaigns over the SEI pipeline.
//
// A campaign sweeps fault-axis points (stuck fraction, programming sigma,
// read noise, array age) and, at each point, runs N independently seeded
// trials of two arms:
//
//   faulty   — the network mapped with the faults and nothing else;
//   repaired — spare rows provisioned, the diagnose/repair hook applied at
//              mapping time, and the thresholds recalibrated on a held-out
//              calibration batch.
//
// Results are accuracy-degradation curves (mean/min/max over trials) plus
// aggregate repair statistics, reproducible from a single seed, and can be
// serialized to JSON (schema in docs/reliability.md) for plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/sei_network.hpp"
#include "reliability/calibrate.hpp"
#include "reliability/repair.hpp"

namespace sei::reliability {

/// One point on the fault axis. Fields overwrite the campaign's base
/// DeviceConfig; `drift_t_s` > 0 additionally enables the drift model with
/// the campaign's drift exponents.
struct FaultPoint {
  double stuck_fraction = 0.0;
  double program_sigma = 0.0;
  double read_noise_sigma = 0.0;
  double drift_t_s = 0.0;  // array age at evaluation time, seconds
  std::string label;       // axis label for reports
};

struct CampaignConfig {
  core::HardwareConfig base;  // healthy hardware the points perturb
  std::vector<FaultPoint> points;
  int trials = 3;
  int eval_images = 200;   // evaluation batch per arm (-1 = whole set)
  std::uint64_t seed = 20160605;

  bool repair = true;                    // run the repaired arm
  double spare_row_fraction = 0.25;      // provisioning of the repaired arm
  RepairConfig repair_cfg{};
  CalibrationConfig calib_cfg{};

  // Drift exponents used when a point sets drift_t_s > 0.
  double drift_nu = 0.02;
  double drift_nu_sigma = 0.01;
};

struct TrialResult {
  std::uint64_t seed = 0;
  double faulty_error_pct = 0.0;
  // Repaired arm (NaN when cfg.repair is off):
  double repaired_error_pct = 0.0;       // after repair + recalibration
  double pre_recalib_error_pct = 0.0;    // after repair, before recalibration
  RepairReport repair;
};

/// Mean/min/max over the trials of one point.
struct Stat {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};
Stat summarize(const std::vector<double>& xs);

struct PointResult {
  FaultPoint point;
  std::vector<TrialResult> trials;
  Stat faulty;
  Stat repaired;        // NaNs when the repaired arm is off
  RepairReport repair;  // summed over trials
};

struct CampaignResult {
  double healthy_error_pct = 0.0;  // base config, no faults
  std::vector<PointResult> points;
};

/// Runs the campaign. `eval` scores both arms; `calib` is the held-out
/// batch the repaired arm recalibrates on (pass the training set or a
/// slice of it — never `eval`).
CampaignResult run_campaign(const quant::QNetwork& qnet,
                            const data::Dataset& eval,
                            const data::Dataset& calib,
                            const CampaignConfig& cfg);

/// Serializes a campaign to the JSON schema of docs/reliability.md.
void write_campaign_json(const CampaignResult& result,
                         const CampaignConfig& cfg, const std::string& path);

/// The HardwareConfig one trial of one point runs under (exposed for
/// tests): base + the point's fault fields + the trial seed, with spares
/// provisioned only for the repaired arm.
core::HardwareConfig trial_hardware(const CampaignConfig& cfg,
                                    const FaultPoint& p,
                                    std::uint64_t trial_seed, bool repaired);

/// Deterministic per-trial seed derived from (campaign seed, point index,
/// trial index).
std::uint64_t trial_seed(const CampaignConfig& cfg, int point_idx, int trial);

}  // namespace sei::reliability
