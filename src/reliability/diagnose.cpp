#include "reliability/diagnose.hpp"

#include <cmath>

namespace sei::reliability {

double expected_cell_value(const rram::Crossbar& xb, int r, int c) {
  return static_cast<double>(xb.cell_level(r, c)) *
         xb.ir_factor(xb.physical_row(r), c);
}

CrossbarDiagnosis diagnose_crossbar(const rram::Crossbar& xb,
                                    const DiagnoseConfig& cfg, Rng& rng) {
  SEI_CHECK_MSG(cfg.reads >= 1, "diagnosis needs at least one read");
  SEI_CHECK_MSG(cfg.tolerance > 0.0, "diagnosis tolerance must be positive");

  const int rows = xb.rows(), cols = xb.cols();
  CrossbarDiagnosis d;
  d.row_faults.assign(static_cast<std::size_t>(rows), 0);
  d.col_faults.assign(static_cast<std::size_t>(cols), 0);

  std::vector<std::uint8_t> select(static_cast<std::size_t>(rows), 0);
  std::vector<double> port(static_cast<std::size_t>(rows), 1.0);
  std::vector<double> out(static_cast<std::size_t>(cols));
  std::vector<double> acc(static_cast<std::size_t>(cols));

  for (int r = 0; r < rows; ++r) {
    select[static_cast<std::size_t>(r)] = 1;
    acc.assign(acc.size(), 0.0);
    for (int k = 0; k < cfg.reads; ++k) {
      xb.mvm_selected(select, port, out, rng);
      for (int c = 0; c < cols; ++c)
        acc[static_cast<std::size_t>(c)] += out[static_cast<std::size_t>(c)];
    }
    select[static_cast<std::size_t>(r)] = 0;
    for (int c = 0; c < cols; ++c) {
      const double measured =
          acc[static_cast<std::size_t>(c)] / cfg.reads;
      const double expected = expected_cell_value(xb, r, c);
      if (std::fabs(measured - expected) > cfg.tolerance) {
        d.faults.push_back({r, c, expected, measured});
        ++d.row_faults[static_cast<std::size_t>(r)];
        ++d.col_faults[static_cast<std::size_t>(c)];
      }
    }
  }
  d.fault_fraction = static_cast<double>(d.faults.size()) /
                     (static_cast<double>(rows) * cols);
  return d;
}

}  // namespace sei::reliability
