#include "reliability/calibrate.hpp"

#include <cmath>

#include "quant/threshold_search.hpp"

namespace sei::reliability {

CalibrationReport recalibrate_thresholds(core::SeiNetwork& net,
                                         const data::Dataset& calib,
                                         const CalibrationConfig& cfg) {
  SEI_CHECK_MSG(cfg.gamma_min > 0.0, "threshold trim must stay positive");
  const auto grid =
      quant::threshold_grid(cfg.gamma_min, cfg.gamma_max, cfg.gamma_step);

  CalibrationReport rep;
  rep.error_before_pct = net.error_rate(calib, cfg.max_images);

  double current = rep.error_before_pct;
  for (int s = 0; s < net.stage_count(); ++s) {
    core::MappedLayer& m = net.layer(s);
    if (!m.binarize || m.col_threshold.empty()) continue;

    const std::vector<float> nominal = m.col_threshold;
    StageTrim trim;
    trim.stage = s;
    trim.error_before_pct = current;
    float best_gamma = 1.0f;
    double best_err = current;

    for (const float gamma : grid) {
      if (gamma == 1.0f) continue;  // the incumbent is already measured
      for (std::size_t c = 0; c < nominal.size(); ++c)
        m.col_threshold[c] = nominal[c] * gamma;
      const double err = net.error_rate(calib, cfg.max_images);
      // Strict improvement, or an equal error closer to no-trim.
      if (err < best_err ||
          (err == best_err &&
           std::fabs(gamma - 1.0f) < std::fabs(best_gamma - 1.0f))) {
        best_err = err;
        best_gamma = gamma;
      }
    }

    // Keep the incumbent unless the best trim clears the adoption margin:
    // small-batch wins below the margin are noise, not signal.
    if (best_gamma != 1.0f && best_err >= current - cfg.min_gain_pct) {
      best_gamma = 1.0f;
      best_err = current;
    }
    for (std::size_t c = 0; c < nominal.size(); ++c)
      m.col_threshold[c] = nominal[c] * best_gamma;
    current = best_err;
    trim.gamma = best_gamma;
    trim.error_after_pct = best_err;
    rep.stages.push_back(trim);
  }
  rep.error_after_pct = current;
  return rep;
}

Result<CalibrationReport> try_recalibrate_thresholds(
    core::SeiNetwork& net, const data::Dataset& calib,
    const CalibrationConfig& cfg, const exec::CancelToken* cancel) {
  if (cfg.gamma_min <= 0.0)
    return Error{ErrorCode::kInternal, "threshold trim must stay positive"};
  const auto grid =
      quant::threshold_grid(cfg.gamma_min, cfg.gamma_max, cfg.gamma_step);

  try {
    CalibrationReport rep;
    rep.error_before_pct = net.error_rate(calib, cfg.max_images);

    double current = rep.error_before_pct;
    for (int s = 0; s < net.stage_count(); ++s) {
      core::MappedLayer& m = net.layer(s);
      if (!m.binarize || m.col_threshold.empty()) continue;

      const std::vector<float> nominal = m.col_threshold;
      StageTrim trim;
      trim.stage = s;
      trim.error_before_pct = current;
      float best_gamma = 1.0f;
      double best_err = current;

      for (const float gamma : grid) {
        if (gamma == 1.0f) continue;
        if (cancel && cancel->expired()) {
          // Leave the network in a sane state: the stage being swept goes
          // back to its nominal thresholds before we bail out.
          m.col_threshold = nominal;
          return cancel->to_error();
        }
        for (std::size_t c = 0; c < nominal.size(); ++c)
          m.col_threshold[c] = nominal[c] * gamma;
        const double err = net.error_rate(calib, cfg.max_images);
        if (err < best_err ||
            (err == best_err &&
             std::fabs(gamma - 1.0f) < std::fabs(best_gamma - 1.0f))) {
          best_err = err;
          best_gamma = gamma;
        }
      }

      if (best_gamma != 1.0f && best_err >= current - cfg.min_gain_pct) {
        best_gamma = 1.0f;
        best_err = current;
      }
      for (std::size_t c = 0; c < nominal.size(); ++c)
        m.col_threshold[c] = nominal[c] * best_gamma;
      current = best_err;
      trim.gamma = best_gamma;
      trim.error_after_pct = best_err;
      rep.stages.push_back(trim);
    }
    rep.error_after_pct = current;
    return rep;
  } catch (const exec::Cancelled&) {
    return cancel ? cancel->to_error()
                  : Error{ErrorCode::kCancelled, "calibration cancelled"};
  } catch (const std::exception& e) {
    return Error{ErrorCode::kInternal,
                 std::string("calibration failed: ") + e.what()};
  }
}

}  // namespace sei::reliability
