#include "reliability/repair.hpp"

#include <algorithm>
#include <cmath>

namespace sei::reliability {

RepairReport& RepairReport::operator+=(const RepairReport& o) {
  crossbars += o.crossbars;
  faults_found += o.faults_found;
  cells_retried += o.cells_retried;
  cells_recovered += o.cells_recovered;
  rows_remapped += o.rows_remapped;
  rows_unrepairable += o.rows_unrepairable;
  cell_writes += o.cell_writes;
  return *this;
}

namespace {

/// Controller-side verify: the cell's effective value is within tolerance
/// of its intent (the write-verify loop's own acceptance criterion, minus
/// read noise — the verify read is averaged in hardware).
bool cell_ok(const rram::Crossbar& xb, int r, int c, double tolerance) {
  return std::fabs(xb.cell(r, c) - expected_cell_value(xb, r, c)) <=
         tolerance;
}

bool row_ok(const rram::Crossbar& xb, int r, double tolerance) {
  for (int c = 0; c < xb.cols(); ++c)
    if (!cell_ok(xb, r, c, tolerance)) return false;
  return true;
}

}  // namespace

RepairReport repair_crossbar(rram::Crossbar& xb, const RepairConfig& cfg,
                             Rng& rng) {
  SEI_CHECK_MSG(cfg.retry_rounds >= 1 && cfg.base_attempts >= 1 &&
                    cfg.max_remap_tries >= 1,
                "repair budgets must be positive");
  RepairReport rep;
  rep.crossbars = 1;
  const long long writes_before = xb.total_program_attempts();
  const double tol = cfg.diagnose.tolerance;

  const CrossbarDiagnosis d = diagnose_crossbar(xb, cfg.diagnose, rng);
  rep.faults_found = static_cast<int>(d.faults.size());
  if (d.clean()) return rep;

  // Phase 1: retry escalation on each flagged cell.
  std::vector<int> bad_per_row(static_cast<std::size_t>(xb.rows()), 0);
  for (const CellFault& f : d.faults) {
    ++rep.cells_retried;
    bool fixed = false;
    for (int round = 0; round < cfg.retry_rounds && !fixed; ++round) {
      xb.reprogram(f.row, f.col, cfg.base_attempts << round);
      fixed = cell_ok(xb, f.row, f.col, tol);
    }
    if (fixed)
      ++rep.cells_recovered;
    else
      ++bad_per_row[static_cast<std::size_t>(f.row)];
  }

  // Phase 2: remap the rows escalation could not fix, worst first (spares
  // are scarce; a row with many stuck cells hurts every output column it
  // touches).
  std::vector<int> bad_rows;
  for (int r = 0; r < xb.rows(); ++r)
    if (bad_per_row[static_cast<std::size_t>(r)] > 0) bad_rows.push_back(r);
  std::sort(bad_rows.begin(), bad_rows.end(), [&](int a, int b) {
    const int fa = bad_per_row[static_cast<std::size_t>(a)];
    const int fb = bad_per_row[static_cast<std::size_t>(b)];
    return fa != fb ? fa > fb : a < b;
  });

  for (const int r : bad_rows) {
    bool healthy = false;
    for (int attempt = 0; attempt < cfg.max_remap_tries && !healthy;
         ++attempt) {
      if (!xb.remap_row(r)) break;  // spares exhausted
      ++rep.rows_remapped;
      // The spare may itself hold faulty devices: escalate on any cell
      // that still reads wrong before burning another spare.
      for (int c = 0; c < xb.cols(); ++c)
        for (int round = 0;
             round < cfg.retry_rounds && !cell_ok(xb, r, c, tol); ++round)
          xb.reprogram(r, c, cfg.base_attempts << round);
      healthy = row_ok(xb, r, tol);
    }
    if (!healthy) ++rep.rows_unrepairable;
  }

  rep.cell_writes = xb.total_program_attempts() - writes_before;
  return rep;
}

core::CrossbarHook make_repair_hook(const RepairConfig& cfg,
                                    RepairReport* report) {
  return [cfg, report](rram::Crossbar& xb, Rng& rng) {
    const RepairReport r = repair_crossbar(xb, cfg, rng);
    if (report) *report += r;
  };
}

}  // namespace sei::reliability
