// Self-repair engine: write-verify retry escalation + spare-row remapping.
//
// Repair runs on a freshly programmed (and aged) crossbar, between
// programming and the mapper's cell snapshot — the CrossbarHook injection
// point of core::map_layer. Two phases:
//
//  1. Retry escalation. Every faulty cell is re-programmed to its recorded
//     intent with an exponentially growing write-verify pulse budget
//     (base_attempts, 2×, 4×, ...). This recovers cells that merely lost
//     the programming lottery (variation, drift) but cannot move stuck
//     devices.
//  2. Spare-row remapping. Rows still holding faulty cells are steered onto
//     the crossbar's reserved spare rows (worst rows first — spares are the
//     scarce resource). A spare can itself be faulty: the row verify
//     re-checks after remapping and burns another spare if needed, up to
//     max_remap_tries per row.
//
// Rows that stay faulty after both phases are reported as unrepairable;
// threshold recalibration (calibrate.hpp) then absorbs what it can.
#pragma once

#include "core/mapping.hpp"
#include "reliability/diagnose.hpp"

namespace sei::reliability {

struct RepairConfig {
  DiagnoseConfig diagnose{};
  int retry_rounds = 3;     // escalation rounds before giving up on a cell
  int base_attempts = 4;    // write-verify cap of round 0 (doubles per round)
  int max_remap_tries = 3;  // spare rows one logical row may burn
};

/// Aggregated outcome of repairing one or more crossbars.
struct RepairReport {
  int crossbars = 0;
  int faults_found = 0;       // cells flagged by the initial diagnosis
  int cells_retried = 0;      // faulty cells that entered retry escalation
  int cells_recovered = 0;    // fixed by escalation alone
  int rows_remapped = 0;      // rows steered onto a spare (counting retries)
  int rows_unrepairable = 0;  // rows still faulty after spares ran out
  long long cell_writes = 0;  // programming pulses spent on repair

  RepairReport& operator+=(const RepairReport& o);
};

/// Runs the diagnose → retry → remap loop on one crossbar. `rng` drives the
/// readback noise of the diagnosis/verify measurements.
RepairReport repair_crossbar(rram::Crossbar& xb, const RepairConfig& cfg,
                             Rng& rng);

/// Wraps repair_crossbar as a core::CrossbarHook for SeiNetwork /
/// map_layer. When `report` is non-null, every repaired crossbar's outcome
/// is accumulated into it (the pointer must outlive the hook).
core::CrossbarHook make_repair_hook(const RepairConfig& cfg,
                                    RepairReport* report = nullptr);

}  // namespace sei::reliability
