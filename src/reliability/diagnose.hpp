// Fault detection by test-pattern readback (docs/reliability.md).
//
// The programming controller knows the level it intended for every cell
// (Crossbar::cell_level records the intent even when write-verify gave up).
// Selecting one logical row at a time with a unit port coefficient puts that
// row's cell values directly on the column lines; averaging a few reads
// suppresses read noise, and any cell whose measured value deviates from
// intent × IR-attenuation by more than `tolerance` level units is flagged —
// a stuck cell, a write-verify give-up, or excessive conductance drift all
// look the same to the readback (and are all repaired the same way).
#pragma once

#include <vector>

#include "rram/crossbar.hpp"

namespace sei::reliability {

struct DiagnoseConfig {
  int reads = 3;            // row readbacks averaged per measurement
  double tolerance = 0.75;  // level-unit deviation that flags a cell
};

/// One cell whose readback disagrees with its programming intent.
struct CellFault {
  int row = 0;  // logical row
  int col = 0;
  double expected = 0.0;  // intent × IR attenuation
  double measured = 0.0;  // read-back average
};

struct CrossbarDiagnosis {
  std::vector<CellFault> faults;
  std::vector<int> row_faults;  // faulty cells per logical row
  std::vector<int> col_faults;  // faulty cells per column
  double fault_fraction = 0.0;  // |faults| / (rows × cols)
  bool clean() const { return faults.empty(); }
};

/// Reads back every data row of `xb` and localizes the cells that deviate
/// from their intended levels. `rng` drives the read noise of the readback
/// measurements only — the crossbar state is untouched.
CrossbarDiagnosis diagnose_crossbar(const rram::Crossbar& xb,
                                    const DiagnoseConfig& cfg, Rng& rng);

/// Ideal (noise-free) readback value of a healthy cell: the intended level
/// attenuated by the IR drop of the physical position the logical row
/// currently maps to. Exposed for the repair engine's verify step.
double expected_cell_value(const rram::Crossbar& xb, int r, int c);

}  // namespace sei::reliability
