// Post-repair threshold recalibration.
//
// Faults and drift that survive repair shift every column's analog sum away
// from what Algorithm 1's threshold search saw. The sense-amp references
// are trim-able at test time, so a calibration batch can re-center them:
// for each hidden stage, front to back, brute-force a single multiplicative
// trim γ on the stage's per-column thresholds (the same grid machinery as
// quant::threshold_grid) and keep the γ with the lowest calibration error —
// ties break toward γ = 1 (no trim). One scalar per stage keeps the trim
// implementable as a shared reference-ladder adjustment rather than
// per-column storage.
#pragma once

#include "common/result.hpp"
#include "core/sei_network.hpp"
#include "data/dataset.hpp"
#include "exec/cancel.hpp"

namespace sei::reliability {

struct CalibrationConfig {
  double gamma_min = 0.6;   // trim search range (× nominal threshold)
  double gamma_max = 1.4;
  double gamma_step = 0.05;
  // Calibration batch size (-1 = whole set). Empirically 100 images is too
  // few: a trim can "gain" several points on the batch while doubling the
  // test error of an already-healthy chip.
  int max_images = 500;
  // A trim is adopted only when it beats the untrimmed calibration error by
  // more than this margin; sub-margin wins are batch noise, not signal.
  double min_gain_pct = 0.5;
};

struct StageTrim {
  int stage = 0;
  float gamma = 1.0f;             // chosen trim
  double error_before_pct = 0.0;  // calibration error entering this stage
  double error_after_pct = 0.0;   // after fixing this stage's trim
};

struct CalibrationReport {
  std::vector<StageTrim> stages;
  double error_before_pct = 0.0;  // calibration error before any trim
  double error_after_pct = 0.0;   // after all stages are trimmed
};

/// Greedily trims the hidden-stage thresholds of `net` in place against the
/// calibration set. Returns the per-stage trims and error trajectory.
CalibrationReport recalibrate_thresholds(core::SeiNetwork& net,
                                         const data::Dataset& calib,
                                         const CalibrationConfig& cfg = {});

/// Serving-path variant: checks `cancel` between trim evaluations (an
/// expired token restores the nominal thresholds of the stage being swept
/// and returns Error{kCancelled/kDeadlineExceeded}) and converts unexpected
/// exceptions to Error{kInternal} instead of unwinding through the runtime.
Result<CalibrationReport> try_recalibrate_thresholds(
    core::SeiNetwork& net, const data::Dataset& calib,
    const CalibrationConfig& cfg = {},
    const exec::CancelToken* cancel = nullptr);

}  // namespace sei::reliability
