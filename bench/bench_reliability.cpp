// Reliability campaign: accuracy degradation under stuck cells, programming
// variation, read noise and conductance drift — with and without the
// repair pipeline (spare-row remapping + write-verify escalation +
// threshold recalibration). Prints degradation curves and writes the full
// campaign as JSON (schema: docs/reliability.md).
//
// The two headline rows the acceptance criteria care about:
//   * at ≥2% stuck cells the unrepaired network collapses;
//   * repair + recalibration lands within 2 points of the healthy baseline.
//
// Flags: --network network2, --images 500, --trials 3, --calib-images 500,
//        --seed 20160605, --out reliability_campaign.json.
#include <cstdio>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "common/signals.hpp"
#include "common/table.hpp"
#include "exec/thread_pool.hpp"
#include "reliability/campaign.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name =
      cli.get("network", "network2", "workload to map");
  const int images = cli.get_int("images", 500, "eval images per arm");
  const int trials = cli.get_int("trials", 3, "Monte-Carlo trials per point");
  const int calib_images =
      cli.get_int("calib-images", 500, "recalibration batch size");
  const int seed = cli.get_int("seed", 20160605, "campaign master seed");
  const std::string out =
      cli.get("out", "reliability_campaign.json", "JSON report path");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("SEI reliability campaign (fault injection + repair)"))
    return 0;
  install_shutdown_handler();  // SIGINT/SIGTERM: finish trial, partial JSON

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  reliability::CampaignConfig cfg;
  cfg.trials = trials;
  cfg.eval_images = images;
  cfg.calib_cfg.max_images = calib_images;
  cfg.seed = static_cast<std::uint64_t>(seed);
  // Four fault axes: stuck cells, open-loop programming noise, read noise,
  // and retention loss at increasing array age.
  cfg.points = {
      {0.005, 0.0, 0.0, 0.0, "stuck 0.5%"},
      {0.01, 0.0, 0.0, 0.0, "stuck 1%"},
      {0.02, 0.0, 0.0, 0.0, "stuck 2%"},
      {0.04, 0.0, 0.0, 0.0, "stuck 4%"},
      {0.0, 0.1, 0.0, 0.0, "prog sigma 0.10"},
      {0.0, 0.2, 0.0, 0.0, "prog sigma 0.20"},
      {0.0, 0.0, 0.05, 0.0, "read noise 5%"},
      {0.0, 0.0, 0.0, 1.0e6, "drift ~12 days"},
      {0.0, 0.0, 0.0, 1.0e8, "drift ~3 years"},
      {0.02, 0.1, 0.02, 0.0, "combined"},
  };

  const reliability::CampaignResult res =
      run_campaign(art.qnet, data.test, data.train, cfg);

  std::printf("SEI reliability campaign — %s, %d trials × %d images, "
              "healthy error %.2f%%\n\n",
              net_name.c_str(), trials, images, res.healthy_error_pct);

  TextTable t("Degradation and recovery (error %, mean [min..max])");
  t.header({"Fault point", "Faulty", "Repaired", "Faults", "Remapped",
            "Unrepairable"});
  for (const reliability::PointResult& p : res.points) {
    char faulty[64], repaired[64];
    std::snprintf(faulty, sizeof faulty, "%.2f [%.2f..%.2f]", p.faulty.mean,
                  p.faulty.min, p.faulty.max);
    std::snprintf(repaired, sizeof repaired, "%.2f [%.2f..%.2f]",
                  p.repaired.mean, p.repaired.min, p.repaired.max);
    t.row({p.point.label, faulty, repaired,
           std::to_string(p.repair.faults_found),
           std::to_string(p.repair.rows_remapped),
           std::to_string(p.repair.rows_unrepairable)});
  }
  std::printf("%s\n", t.str().c_str());

  write_campaign_json(res, cfg, out);
  std::printf("campaign JSON written to %s\n", out.c_str());

  // The acceptance summary the driver greps for.
  for (const reliability::PointResult& p : res.points) {
    if (p.point.label != "stuck 2%") continue;
    const bool collapse = p.faulty.mean > res.healthy_error_pct + 2.0;
    const bool recovered = p.repaired.mean <= res.healthy_error_pct + 2.0;
    std::printf("stuck-2%%: collapse-without-repair=%s "
                "recovered-within-2pts=%s\n",
                collapse ? "yes" : "NO", recovered ? "yes" : "NO");
  }
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
