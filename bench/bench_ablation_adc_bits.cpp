// Ablation: how many ADC bits does the merging structure (Fig. 2(b),
// "1-bit-Input+ADC") actually need — i.e. what is the sense amplifier of
// the SEI structure replacing?
//
// The paper's argument is architectural (ADCs cost 98% of everything);
// this bench quantifies the functional side: the merging path needs a
// high-resolution converter because the partial sums of the bit-slice ×
// polarity planes span the full dynamic range, while SEI only ever makes a
// 1-bit decision. ADC energy/area scale ~2× per bit (rram::periphery), so
// the required resolution directly multiplies the Fig. 1 overhead.
//
// Flags: --network network2, --images 1000, --bits "1,2,3,4,5,6,8,10".
#include <cstdio>
#include <sstream>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "core/adc_network.hpp"
#include "rram/periphery.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {
std::vector<int> parse_ints(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const int images = cli.get_int("images", 1000);
  const auto bits_list = parse_ints(cli.get("bits", "1,2,3,4,5,6,8,10"));
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("ADC resolution vs accuracy for the merging structure"))
    return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});
  const double sw_err = art.quant_error(data.test);
  const auto& cat = rram::default_periphery();

  std::printf("ADC-bits ablation — %s (exact-merging binary error %.2f%%)\n\n",
              net_name.c_str(), sw_err);
  TextTable t;
  t.header({"ADC bits", "Error", "ADC energy/conv", "ADC area/inst"});
  for (int bits : bits_list) {
    core::AdcConfig cfg;
    cfg.adc_bits = bits;
    core::AdcNetwork hw(art.qnet, cfg, data.train);
    t.row({std::to_string(bits),
           TextTable::pct(hw.error_rate(data.test, images)),
           TextTable::num(cat.adc_energy_pj(bits), 1) + " pJ",
           TextTable::num(cat.adc_area_um2(bits), 0) + " um^2"});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Reading the table: the merging path needs ~6-8 ADC bits to match\n"
      "exact merging, and converter cost doubles per bit — that product is\n"
      "the Fig. 1 overhead. The SEI structure's sense amp is a 1-bit\n"
      "decision at ~%.0fx less energy than the 8-bit ADC.\n",
      cat.adc_energy_pj(8) / cat.sense_amp.energy_pj);
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
