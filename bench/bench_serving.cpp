// Fleet serving soak: open-loop Poisson arrivals from mixed tenants against
// a sharded FleetRuntime, with scripted fault storms that stuck-fault whole
// shards mid-run. Reports per-tenant p50/p99 latency, availability, the
// Jain fairness index over weight-normalized service, failover/recovery
// timelines and checkpoint activity (schema sei-serving-v3).
//
// Arrival modes:
//   --rate > 0   open-loop Poisson at that many requests/second (arrival
//                times are independent of service times — queueing theory's
//                honest overload model);
//   --rate 0     closed-loop with a bounded in-flight window (--window),
//                i.e. sustained saturation — the mode for fairness gates.
//
// Gates (--min-availability, --min-fairness, --max-p99-ms) make the bench
// CI-enforceable: the JSON is always written, the exit code says pass/fail.
//
// Flags: --network, --requests, --shards, --tenants "A:2,B:1", --queue,
// --quota-j, --rate, --window, --arrival-seed, --max-batch, --linger-us,
// --deadline-ms, --probe-every, --checkpoint-every, --checkpoint-dir,
// --storm-at, --storm-shard, --storm-stuck, --json, gates above.
// SIGINT/SIGTERM drain gracefully and still write the JSON.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/rng.hpp"
#include "common/signals.hpp"
#include "core/adc_network.hpp"
#include "exec/thread_pool.hpp"
#include "reliability/repair.hpp"
#include "serve/fleet.hpp"
#include "telemetry/alloc.hpp"
#include "telemetry/flags.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

double percentile(std::vector<double> v, double pct) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = pct / 100.0 * (static_cast<double>(v.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

/// Per-tenant tallies harvested from the response stream itself (the
/// client's view — availability is judged on what clients got back).
struct TenantTally {
  std::uint64_t answered = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_misses = 0;
  // Rejection breakout by cause — "rejected" alone can't distinguish a
  // shedding fleet from a quota-starved tenant or a deadline too tight.
  std::uint64_t shed = 0;            // kShedding
  std::uint64_t quota_rejected = 0;  // kQuotaExceeded
  std::uint64_t queue_full = 0;      // kQueueFull
  std::uint64_t other_rejected = 0;  // any remaining rejection code
  std::vector<double> latencies_ms;

  double availability_pct() const {
    return answered == 0 ? 100.0
                         : 100.0 * static_cast<double>(ok + degraded) /
                               static_cast<double>(answered);
  }
};

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const int requests = cli.get_int("requests", 20000, "requests to submit");
  const int nshards = cli.get_int("shards", 3, "SEI replica count");
  const std::string tenant_spec =
      cli.get("tenants", "A:2,B:1", "tenant weights, name:weight[,...]");
  const int queue_cap =
      cli.get_int("queue", 64, "per-tenant admission queue bound");
  const double quota_j =
      cli.get_double("quota-j", 0.0, "per-tenant energy quota in J (0 = off)");
  const double rate = cli.get_double(
      "rate", 0.0, "Poisson arrival rate in req/s (0 = closed loop)");
  const int window = cli.get_int(
      "window", 0, "closed-loop in-flight window (0 = queue * tenants)");
  const std::uint64_t arrival_seed = static_cast<std::uint64_t>(
      cli.get_int("arrival-seed", 20260808, "arrival-process seed"));
  const int max_batch =
      cli.get_int("max-batch", 16, "micro-batch coalescing bound");
  const int linger_us =
      cli.get_int("linger-us", 0, "micro-batch linger in microseconds");
  const int deadline_ms =
      cli.get_int("deadline-ms", 0, "per-request deadline (0 = none)");
  const int probe_every =
      cli.get_int("probe-every", 16, "served requests per sentinel probe");
  const int ckpt_every = cli.get_int(
      "checkpoint-every", 0, "dispatches per checkpoint set (0 = off)");
  const std::string ckpt_dir =
      cli.get("checkpoint-dir", "", "checkpoint directory (empty = none)");
  const int storm_at = cli.get_int(
      "storm-at", 0, "storm strike at this dispatch count (0 = off)");
  const int storm_shard =
      cli.get_int("storm-shard", 0, "shard the storm stuck-faults");
  const double storm_stuck =
      cli.get_double("storm-stuck", 0.25, "stuck fraction of the strike");
  const int storm_duration = cli.get_int(
      "storm-duration", 0,
      "dispatches the storm persists (repair re-lands damage; 0 = one-shot)");
  const double min_availability = cli.get_double(
      "min-availability", 0.0, "gate: fail below this availability % (0=off)");
  const double min_fairness = cli.get_double(
      "min-fairness", 0.0, "gate: fail below this Jain index (0 = off)");
  const double max_p99 = cli.get_double(
      "max-p99-ms", 0.0, "gate: fail above this per-tenant p99 (0 = off)");
  const int max_request_allocs = cli.get_int(
      "max-request-allocs", -1,
      "gate: fail when post-warmup hot-path heap allocations exceed this "
      "(-1 = off; 0 enforces the zero-alloc contract, docs/plans.md)");
  const std::string json_path = cli.get("json", "BENCH_serving.json");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("fleet serving soak: latency, fairness, storm survival"))
    return 0;
  SEI_CHECK_MSG(requests > 0, "requests must be positive");
  SEI_CHECK_MSG(nshards > 0, "shards must be positive");

  install_shutdown_handler();

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  // Independently-mapped replicas: distinct seeds give each shard its own
  // device variation and read-noise streams, like distinct physical chips.
  reliability::RepairReport repair_report;
  std::vector<std::unique_ptr<core::SeiNetwork>> nets;
  std::vector<core::SeiNetwork*> shard_ptrs;
  for (int k = 0; k < nshards; ++k) {
    core::HardwareConfig hw;
    hw.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
    hw.spare_row_fraction = 0.1;  // tier-1 repair needs spares to remap onto
    nets.push_back(std::make_unique<core::SeiNetwork>(
        art.qnet, hw,
        reliability::make_repair_hook(reliability::RepairConfig{},
                                      &repair_report)));
    shard_ptrs.push_back(nets.back().get());
  }
  core::AdcConfig adc_cfg;
  const core::AdcNetwork fallback(art.qnet, adc_cfg, data.train);

  serve::FleetConfig fc;
  fc.tenants = serve::parse_tenant_specs(tenant_spec);
  for (serve::TenantConfig& t : fc.tenants) {
    t.queue_capacity = queue_cap;
    t.energy_quota_j = quota_j;
  }
  const int ntenants = static_cast<int>(fc.tenants.size());
  fc.batcher.max_batch = max_batch;
  fc.batcher.linger = std::chrono::microseconds(linger_us);
  fc.default_deadline = std::chrono::milliseconds(deadline_ms);
  fc.checkpoint_every = ckpt_every;
  fc.checkpoint_dir = ckpt_dir;
  fc.sentinel.probe_every = probe_every;
  fc.calibration.max_images = 200;
  serve::FleetRuntime fleet(shard_ptrs, art.qnet, data.test, data.train, fc,
                            &fallback);
  if (storm_at > 0) {
    serve::StormSchedule storm;
    storm.events.push_back({static_cast<std::uint64_t>(storm_at), storm_shard,
                            {0, -1, storm_stuck, 1.0},
                            static_cast<std::uint64_t>(storm_duration)});
    fleet.set_storm(storm);
  }
  fleet.start();
  std::printf(
      "fleet soak: %d requests, %d shards, tenants %s, %s arrivals%s\n",
      requests, nshards, tenant_spec.c_str(),
      rate > 0.0 ? "poisson" : "closed-loop",
      fleet.resumed_from_checkpoint() ? " (resumed from checkpoint)" : "");

  const std::size_t per_image =
      data.test.images.numel() / static_cast<std::size_t>(data.test.size());
  auto image = [&](int i) {
    const int k = i % data.test.size();
    return std::span<const float>{
        data.test.images.data() + static_cast<std::size_t>(k) * per_image,
        per_image};
  };

  std::vector<TenantTally> tally(static_cast<std::size_t>(ntenants));
  struct Inflight {
    std::future<serve::FleetResponse> fut;
  };
  std::deque<Inflight> inflight;
  auto settle_front = [&] {
    serve::FleetResponse r = inflight.front().fut.get();
    inflight.pop_front();
    TenantTally& tt = tally[static_cast<std::size_t>(r.tenant)];
    ++tt.answered;
    tt.latencies_ms.push_back(r.latency_ms);
    switch (r.status) {
      case serve::FleetResponseStatus::kOk: ++tt.ok; break;
      case serve::FleetResponseStatus::kDegraded: ++tt.degraded; break;
      case serve::FleetResponseStatus::kRejected:
        ++tt.rejected;
        switch (r.error) {
          case ErrorCode::kDeadlineExceeded: ++tt.deadline_misses; break;
          case ErrorCode::kShedding: ++tt.shed; break;
          case ErrorCode::kQuotaExceeded: ++tt.quota_rejected; break;
          case ErrorCode::kQueueFull: ++tt.queue_full; break;
          default: ++tt.other_rejected; break;
        }
        break;
    }
  };

  using Clock = std::chrono::steady_clock;
  Rng arrivals = Rng::fork(arrival_seed, 0);
  const int inflight_cap =
      window > 0 ? window : std::max(1, queue_cap * ntenants);
  const Clock::time_point t_start = Clock::now();
  Clock::time_point next_arrival = t_start;
  int submitted = 0;
  for (; submitted < requests && !shutdown_requested(); ++submitted) {
    const int tenant = static_cast<int>(
        arrivals.below(static_cast<std::uint64_t>(ntenants)));
    if (rate > 0.0) {
      // Exponential inter-arrival: the open-loop clock never waits for
      // responses, so overload actually overloads.
      const double gap_s = -std::log(1.0 - arrivals.uniform()) / rate;
      next_arrival +=
          std::chrono::nanoseconds(static_cast<long long>(gap_s * 1e9));
      std::this_thread::sleep_until(next_arrival);
      while (!inflight.empty() &&
             inflight.front().fut.wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready)
        settle_front();
    } else {
      while (static_cast<int>(inflight.size()) >= inflight_cap)
        settle_front();
    }
    inflight.push_back({fleet.submit(tenant, image(submitted))});
  }
  while (!inflight.empty()) settle_front();
  fleet.stop();  // drain + final checkpoint set + energy publish
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t_start).count();

  const serve::FleetStats st = fleet.stats();
  const auto failovers = fleet.failovers();

  // Weight-normalized Jain fairness over delivered service.
  std::vector<double> normalized;
  for (int t = 0; t < ntenants; ++t) {
    const TenantTally& tt = tally[static_cast<std::size_t>(t)];
    normalized.push_back(
        static_cast<double>(tt.ok + tt.degraded) /
        fc.tenants[static_cast<std::size_t>(t)].weight);
  }
  const double fairness = serve::jain_fairness(normalized);

  std::uint64_t answered = 0, available = 0;
  double worst_p99 = 0.0;
  for (int t = 0; t < ntenants; ++t) {
    const TenantTally& tt = tally[static_cast<std::size_t>(t)];
    answered += tt.answered;
    available += tt.ok + tt.degraded;
    worst_p99 = std::max(worst_p99, percentile(tt.latencies_ms, 99.0));
  }
  const double availability =
      answered == 0 ? 100.0
                    : 100.0 * static_cast<double>(available) /
                          static_cast<double>(answered);

  std::printf("\n%.1f req/s over %.2f s  availability %.2f%%  jain %.4f  "
              "failovers %llu  checkpoints %llu\n",
              static_cast<double>(answered) / wall_s, wall_s, availability,
              fairness, static_cast<unsigned long long>(st.failovers),
              static_cast<unsigned long long>(st.checkpoints));
  for (int t = 0; t < ntenants; ++t) {
    const TenantTally& tt = tally[static_cast<std::size_t>(t)];
    std::printf("tenant %s (w=%.1f): answered %llu  ok %llu  degraded %llu  "
                "rejected %llu  p50 %.3f ms  p99 %.3f ms  avail %.2f%%  "
                "energy %.3g J\n",
                fc.tenants[static_cast<std::size_t>(t)].name.c_str(),
                fc.tenants[static_cast<std::size_t>(t)].weight,
                static_cast<unsigned long long>(tt.answered),
                static_cast<unsigned long long>(tt.ok),
                static_cast<unsigned long long>(tt.degraded),
                static_cast<unsigned long long>(tt.rejected),
                percentile(tt.latencies_ms, 50.0),
                percentile(tt.latencies_ms, 99.0), tt.availability_pct(),
                st.tenants[static_cast<std::size_t>(t)].energy_j);
  }
  for (int k = 0; k < nshards; ++k) {
    const serve::ShardStats& ss = st.shards[static_cast<std::size_t>(k)];
    std::printf("shard %d: served %llu  state %s  trips %d  baseline %.2f%%\n",
                k, static_cast<unsigned long long>(ss.served),
                serve::to_string(ss.state), ss.trips, ss.baseline_pct);
    for (const serve::RecoveryRecord& r : fleet.shard_recoveries(k))
      std::printf("  recovery: tripped @%llu, %s @%llu (tier %d, %.1f ms)\n",
                  static_cast<unsigned long long>(r.tripped_at_served),
                  r.closed ? "closed" : "parked",
                  static_cast<unsigned long long>(r.resolved_at_served),
                  r.tier_reached, r.duration_ms);
  }

  JsonWriter j(json_path);
  j.begin_object();
  j.kv("schema", "sei-serving-v3");
  j.kv("network", net_name);
  j.kv("requests", static_cast<long long>(requests));
  j.kv("submitted", static_cast<long long>(submitted));
  j.kv("shards", static_cast<long long>(nshards));
  j.kv("tenant_spec", tenant_spec);
  j.kv("rate_per_s", rate);
  j.kv("max_batch", static_cast<long long>(max_batch));
  j.kv("deadline_ms", static_cast<long long>(deadline_ms));
  j.kv("storm_at", static_cast<long long>(storm_at));
  j.kv("storm_shard", static_cast<long long>(storm_shard));
  j.kv("storm_stuck", storm_stuck);
  j.kv("storm_duration", static_cast<long long>(storm_duration));
  j.kv("interrupted", shutdown_requested());
  j.kv("resumed_from_checkpoint", fleet.resumed_from_checkpoint());
  j.kv("wall_s", wall_s);
  j.kv("throughput_per_s", static_cast<double>(answered) / wall_s);
  j.kv("availability_pct", availability);
  j.kv("jain_fairness", fairness);
  // Zero-alloc contract evidence: post-warmup heap allocations on the
  // evaluation hot path (docs/plans.md §4). alloc_counting distinguishes a
  // true zero from "counters compiled out".
  j.kv("alloc_counting", telemetry::alloc_counting_available());
  j.kv("alloc_measured_requests",
       static_cast<long long>(st.alloc_measured_requests));
  j.kv("serve_request_allocs",
       static_cast<long long>(st.serve_request_allocs));
  j.key("tenants");
  j.begin_array();
  for (int t = 0; t < ntenants; ++t) {
    const TenantTally& tt = tally[static_cast<std::size_t>(t)];
    const serve::TenantCounters& c = st.tenants[static_cast<std::size_t>(t)];
    j.begin_object();
    j.kv("name", fc.tenants[static_cast<std::size_t>(t)].name);
    j.kv("weight", fc.tenants[static_cast<std::size_t>(t)].weight);
    j.kv("answered", static_cast<long long>(tt.answered));
    j.kv("ok", static_cast<long long>(tt.ok));
    j.kv("degraded", static_cast<long long>(tt.degraded));
    j.kv("rejected", static_cast<long long>(tt.rejected));
    j.kv("deadline_misses", static_cast<long long>(tt.deadline_misses));
    j.kv("shed", static_cast<long long>(tt.shed));
    j.kv("quota_rejected", static_cast<long long>(tt.quota_rejected));
    j.kv("queue_full", static_cast<long long>(tt.queue_full));
    j.kv("other_rejected", static_cast<long long>(tt.other_rejected));
    j.kv("queue_rejections", static_cast<long long>(c.queue_rejections));
    j.kv("quota_rejections", static_cast<long long>(c.quota_rejections));
    j.kv("dropped_expired", static_cast<long long>(c.dropped_expired));
    j.kv("p50_latency_ms", percentile(tt.latencies_ms, 50.0));
    j.kv("p99_latency_ms", percentile(tt.latencies_ms, 99.0));
    j.kv("availability_pct", tt.availability_pct());
    j.kv("energy_j", c.energy_j);
    j.end_object();
  }
  j.end_array();
  j.key("counts");
  j.begin_object();
  j.kv("total_dispatched", static_cast<long long>(st.total_dispatched));
  j.kv("fallback_served", static_cast<long long>(st.fallback_served));
  j.kv("shed", static_cast<long long>(st.shed));
  j.kv("failovers", static_cast<long long>(st.failovers));
  j.kv("checkpoints", static_cast<long long>(st.checkpoints));
  j.kv("batches", static_cast<long long>(st.batcher.batches));
  j.kv("coalesced", static_cast<long long>(st.batcher.coalesced));
  j.kv("dropped_expired", static_cast<long long>(st.batcher.dropped_expired));
  j.end_object();
  j.key("shards");
  j.begin_array();
  for (int k = 0; k < nshards; ++k) {
    const serve::ShardStats& ss = st.shards[static_cast<std::size_t>(k)];
    j.begin_object();
    j.kv("served", static_cast<long long>(ss.served));
    j.kv("state", serve::to_string(ss.state));
    j.kv("trips", ss.trips);
    j.kv("baseline_pct", ss.baseline_pct);
    j.key("breaker_events");
    j.begin_array();
    for (const serve::BreakerEvent& e : fleet.shard_breaker_events(k)) {
      j.begin_object();
      j.kv("at_served", static_cast<long long>(e.at_served));
      j.kv("from", serve::to_string(e.from));
      j.kv("to", serve::to_string(e.to));
      j.kv("tier", e.tier);
      j.kv("note", e.note);
      j.end_object();
    }
    j.end_array();
    j.key("recoveries");
    j.begin_array();
    for (const serve::RecoveryRecord& r : fleet.shard_recoveries(k)) {
      j.begin_object();
      j.kv("tripped_at_served", static_cast<long long>(r.tripped_at_served));
      j.kv("resolved_at_served", static_cast<long long>(r.resolved_at_served));
      j.kv("tier_reached", r.tier_reached);
      j.kv("closed", r.closed);
      j.kv("duration_ms", r.duration_ms);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.kv("failover_count", static_cast<long long>(failovers.size()));
  j.end_object();
  j.commit();
  std::printf("wrote %s\n", json_path.c_str());
  telemetry::telemetry_flush(tel);

  // Gates last: the JSON above is the evidence either way.
  bool gate_failed = false;
  if (!shutdown_requested()) {
    if (min_availability > 0.0 && availability < min_availability) {
      std::fprintf(stderr, "GATE FAILED: availability %.2f%% < %.2f%%\n",
                   availability, min_availability);
      gate_failed = true;
    }
    if (min_fairness > 0.0 && fairness < min_fairness) {
      std::fprintf(stderr, "GATE FAILED: jain fairness %.4f < %.4f\n",
                   fairness, min_fairness);
      gate_failed = true;
    }
    if (max_p99 > 0.0 && worst_p99 > max_p99) {
      std::fprintf(stderr, "GATE FAILED: worst tenant p99 %.3f ms > %.3f ms\n",
                   worst_p99, max_p99);
      gate_failed = true;
    }
    if (max_request_allocs >= 0) {
      if (!telemetry::alloc_counting_available()) {
        std::fprintf(stderr,
                     "GATE FAILED: --max-request-allocs needs the allocation "
                     "counters (build with SEI_ALLOC_COUNTERS=ON, no "
                     "sanitizers)\n");
        gate_failed = true;
      } else if (st.alloc_measured_requests == 0) {
        std::fprintf(stderr,
                     "GATE FAILED: no post-warmup requests were measured — "
                     "raise --requests above the warmup threshold\n");
        gate_failed = true;
      } else if (st.serve_request_allocs >
                 static_cast<std::uint64_t>(max_request_allocs)) {
        std::fprintf(
            stderr,
            "GATE FAILED: %llu heap allocations on the post-warmup hot path "
            "(over %llu measured requests) > %d\n",
            static_cast<unsigned long long>(st.serve_request_allocs),
            static_cast<unsigned long long>(st.alloc_measured_requests),
            max_request_allocs);
        gate_failed = true;
      }
    }
  }
  return gate_failed ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
