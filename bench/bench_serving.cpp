// Serving-runtime benchmark: latency percentiles, availability and
// recovery behaviour of serve::ServingRuntime under an optional scripted
// mid-service fault.
//
// Requests are submitted open-loop with a bounded in-flight window (the
// admission queue's capacity), cycling the test set. When --fault-at is
// set, a stuck-cell fault fires at that served-request count; the canary
// sentinel detects the accuracy drop, the circuit breaker trips and the
// recovery ladder runs — all measured here.
//
// Flags: --network, --requests, --workers, --queue, --deadline-ms,
// --probe-every, --checkpoint-every, --checkpoint, --fault-at,
// --fault-stuck, --json. SIGINT/SIGTERM drain gracefully and still write
// the JSON (schema sei-serving-v1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "common/io.hpp"
#include "common/signals.hpp"
#include "core/adc_network.hpp"
#include "exec/thread_pool.hpp"
#include "reliability/repair.hpp"
#include "serve/runtime.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

double percentile(std::vector<double> v, double pct) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = pct / 100.0 * (static_cast<double>(v.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const int requests = cli.get_int("requests", 2000, "requests to submit");
  const int workers = cli.get_int("workers", 1, "serving worker threads");
  const int queue_cap = cli.get_int("queue", 64, "admission queue bound");
  const int deadline_ms =
      cli.get_int("deadline-ms", 0, "per-request deadline (0 = none)");
  const int probe_every =
      cli.get_int("probe-every", 16, "served requests per sentinel probe");
  const int ckpt_every = cli.get_int(
      "checkpoint-every", 0, "served requests per checkpoint (0 = off)");
  const std::string ckpt_path =
      cli.get("checkpoint", "", "checkpoint file (empty = no durability)");
  const int fault_at = cli.get_int(
      "fault-at", 0, "inject a stuck-cell fault at this served count (0 = off)");
  const double fault_stuck =
      cli.get_double("fault-stuck", 0.05, "stuck fraction of the fault");
  const std::string json_path = cli.get("json", "BENCH_serving.json");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("serving runtime: latency, availability, recovery"))
    return 0;
  SEI_CHECK_MSG(requests > 0, "requests must be positive");

  install_shutdown_handler();

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  core::HardwareConfig hw;
  hw.spare_row_fraction = 0.1;  // tier-1 repair needs spares to remap onto
  reliability::RepairReport repair_report;
  core::SeiNetwork net(
      art.qnet, hw,
      reliability::make_repair_hook(reliability::RepairConfig{},
                                    &repair_report));
  core::AdcConfig adc_cfg;
  const core::AdcNetwork fallback(art.qnet, adc_cfg, data.train);

  serve::RuntimeConfig rc;
  rc.workers = workers;
  rc.queue_capacity = queue_cap;
  rc.default_deadline = std::chrono::milliseconds(deadline_ms);
  rc.checkpoint_every = ckpt_every;
  rc.checkpoint_path = ckpt_path;
  rc.sentinel.probe_every = probe_every;
  rc.calibration.max_images = 200;
  serve::ServingRuntime runtime(net, art.qnet, data.test, data.train, rc,
                                &fallback);
  if (fault_at > 0) {
    serve::FaultSchedule sched;
    sched.events.push_back(
        {static_cast<std::uint64_t>(fault_at), -1, fault_stuck, 1.0});
    runtime.set_fault_schedule(sched);
  }
  runtime.start();
  std::printf("serving %d requests (%d workers, queue %d, deadline %d ms, "
              "sentinel baseline %.2f%%)\n",
              requests, workers, queue_cap, deadline_ms,
              runtime.sentinel_baseline_pct());

  const std::size_t per_image =
      data.test.images.numel() / static_cast<std::size_t>(data.test.size());
  auto image = [&](int i) {
    const int k = i % data.test.size();
    return std::span<const float>{
        data.test.images.data() + static_cast<std::size_t>(k) * per_image,
        per_image};
  };

  std::uint64_t answered = 0, available = 0;
  std::deque<std::future<serve::Response>> inflight;
  auto settle_front = [&] {
    serve::Response r = inflight.front().get();
    inflight.pop_front();
    ++answered;
    if (r.status != serve::ResponseStatus::kRejected) ++available;
  };
  int submitted = 0;
  for (; submitted < requests && !shutdown_requested(); ++submitted) {
    inflight.push_back(runtime.submit(image(submitted)));
    while (static_cast<int>(inflight.size()) >= queue_cap) settle_front();
  }
  while (!inflight.empty()) settle_front();
  runtime.stop();  // drain + final checkpoint

  const serve::RuntimeStats st = runtime.stats();
  const std::vector<double> lat = runtime.latencies_ms();
  const double p50 = percentile(lat, 50.0);
  const double p99 = percentile(lat, 99.0);
  const double availability =
      answered == 0 ? 0.0
                    : 100.0 * static_cast<double>(available) /
                          static_cast<double>(answered);
  const auto events = runtime.breaker_events();
  const auto recoveries = runtime.recoveries();

  std::printf("\nanswered %llu  ok %llu  degraded %llu  rejected %llu  "
              "(deadline misses %llu, shed %llu)\n",
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(st.ok),
              static_cast<unsigned long long>(st.degraded),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.deadline_misses),
              static_cast<unsigned long long>(st.shed));
  std::printf("latency p50 %.3f ms  p99 %.3f ms  availability %.2f%%\n", p50,
              p99, availability);
  std::printf("sentinel baseline %.2f%%  window %.2f%%  probes %llu  "
              "breaker trips %d  checkpoints %llu\n",
              st.sentinel_baseline_pct, st.sentinel_window_pct,
              static_cast<unsigned long long>(st.probes), st.breaker_trips,
              static_cast<unsigned long long>(st.checkpoints));
  for (const serve::RecoveryRecord& r : recoveries)
    std::printf("recovery: tripped @%llu, %s @%llu (tier %d, %.1f ms, "
                "probe acc %.2f%% -> %.2f%%)\n",
                static_cast<unsigned long long>(r.tripped_at_served),
                r.closed ? "closed" : "parked degraded",
                static_cast<unsigned long long>(r.resolved_at_served),
                r.tier_reached, r.duration_ms, r.acc_before_pct,
                r.acc_after_pct);

  JsonWriter j(json_path);
  j.begin_object();
  j.kv("schema", "sei-serving-v1");
  j.kv("network", net_name);
  j.kv("requests", static_cast<long long>(requests));
  j.kv("submitted", static_cast<long long>(submitted));
  j.kv("workers", static_cast<long long>(workers));
  j.kv("queue_capacity", static_cast<long long>(queue_cap));
  j.kv("deadline_ms", static_cast<long long>(deadline_ms));
  j.kv("probe_every", static_cast<long long>(probe_every));
  j.kv("fault_at", static_cast<long long>(fault_at));
  j.kv("fault_stuck", fault_stuck);
  j.kv("interrupted", shutdown_requested());
  j.kv("p50_latency_ms", p50);
  j.kv("p99_latency_ms", p99);
  j.kv("availability_pct", availability);
  j.key("counts");
  j.begin_object();
  j.kv("answered", static_cast<long long>(answered));
  j.kv("ok", static_cast<long long>(st.ok));
  j.kv("degraded", static_cast<long long>(st.degraded));
  j.kv("rejected", static_cast<long long>(st.rejected));
  j.kv("queue_rejections", static_cast<long long>(st.queue_rejections));
  j.kv("deadline_misses", static_cast<long long>(st.deadline_misses));
  j.kv("shed", static_cast<long long>(st.shed));
  j.kv("checkpoints", static_cast<long long>(st.checkpoints));
  j.end_object();
  j.key("sentinel");
  j.begin_object();
  j.kv("baseline_pct", st.sentinel_baseline_pct);
  j.kv("window_pct", st.sentinel_window_pct);
  j.kv("probes", static_cast<long long>(st.probes));
  j.end_object();
  j.key("breaker");
  j.begin_object();
  j.kv("trips", st.breaker_trips);
  j.key("events");
  j.begin_array();
  for (const serve::BreakerEvent& e : events) {
    j.begin_object();
    j.kv("at_served", static_cast<long long>(e.at_served));
    j.kv("from", serve::to_string(e.from));
    j.kv("to", serve::to_string(e.to));
    j.kv("tier", e.tier);
    j.kv("note", e.note);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.key("recoveries");
  j.begin_array();
  for (const serve::RecoveryRecord& r : recoveries) {
    j.begin_object();
    j.kv("tripped_at_served", static_cast<long long>(r.tripped_at_served));
    j.kv("resolved_at_served", static_cast<long long>(r.resolved_at_served));
    j.kv("tier_reached", r.tier_reached);
    j.kv("closed", r.closed);
    j.kv("acc_before_pct", r.acc_before_pct);
    j.kv("acc_after_pct", r.acc_after_pct);
    j.kv("duration_ms", r.duration_ms);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.commit();
  std::printf("wrote %s\n", json_path.c_str());
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
