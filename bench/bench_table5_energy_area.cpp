// Reproduces Table 5: error rate, per-picture energy, and energy/area
// savings of the three structures (DAC+ADC baseline, 1-bit-Input+ADC, SEI)
// on the three Table 2 networks, using 4-bit RRAM devices.
//
// Paper rows (error %, µJ/pic, energy saving %, area saving %):
//   Network 1 @512: 0.93/74.25/—/—, 1.63/62.31/16.08/47.59, 1.52/2.58/96.52/86.57
//   Network 1 @256: 0.93/93.75/—/—, 1.63/81.80/32.74*/36.81, 1.82/2.68/97.15/80.76
//   Network 2 @512: 2.88/12.15/—/—, 3.42/10.45/13.97/56.31, 3.46/0.68/94.37/78.50
//   Network 3 @512: 1.53/17.77/—/—, 2.07/292.01*/15.22/53.35, 2.07/0.73/95.89/74.35
//   (*) self-inconsistent in the paper: 32.74% does not match 81.80/93.75,
//   and 292.01 µJ contradicts the 15.22% saving (≈15.1 µJ implied). We
//   reproduce the self-consistent interpretation (see EXPERIMENTS.md).
//
// Flags: --skip-accuracy (cost model only, fast).
#include <cstdio>

#include "arch/cost_model.hpp"
#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "core/dyn_opt.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

struct PaperRow {
  const char* err;
  const char* energy;
  const char* esave;
  const char* asave;
};

struct Config {
  const char* net;
  int max_size;
  // paper values for DAC+ADC / 1-bit+ADC / SEI
  PaperRow paper[3];
};

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const bool skip_accuracy =
      cli.get_bool("skip-accuracy", false, "cost model only");
  const std::string csv_path =
      cli.get("csv", "", "write the table as CSV to this path");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Table 5: energy and area of the three structures"))
    return 0;

  const Config configs[] = {
      {"network1", 512, {{"0.93", "74.25", "-", "-"},
                         {"1.63", "62.31", "16.08", "47.59"},
                         {"1.52", "2.58", "96.52", "86.57"}}},
      {"network1", 256, {{"0.93", "93.75", "-", "-"},
                         {"1.63", "81.80", "12.75*", "36.81"},
                         {"1.82", "2.68", "97.15", "80.76"}}},
      {"network2", 512, {{"2.88", "12.15", "-", "-"},
                         {"3.42", "10.45", "13.97", "56.31"},
                         {"3.46", "0.68", "94.37", "78.50"}}},
      {"network3", 512, {{"1.53", "17.77", "-", "-"},
                         {"2.07", "15.06*", "15.22", "53.35"},
                         {"2.07", "0.73", "95.89", "74.35"}}},
  };

  data::DataBundle data;
  if (!skip_accuracy) data = workloads::load_default_data(true);

  TextTable t("Table 5 reproduction (measured | paper in brackets)");
  t.header({"Network", "Crossbar", "Structure", "Error", "Energy uJ/pic",
            "E-saving", "A-saving", "GOPs/J"});

  for (const Config& c : configs) {
    core::HardwareConfig cfg;
    cfg.limits.max_rows = c.max_size;
    cfg.limits.max_cols = c.max_size;
    const workloads::Workload wl = workloads::workload_by_name(c.net);

    // Accuracy for the three structures.
    double err[3] = {0, 0, 0};
    if (!skip_accuracy) {
      workloads::Artifacts art = workloads::prepare_workload(c.net, data, {});
      err[0] = art.float_test_error_pct;   // exact 8-bit digital pipeline
      err[1] = art.quant_error(data.test); // binary data, exact ADC merging
      core::SeiNetwork sei =
          workloads::make_sei_network(art, cfg, data, true);
      err[2] = sei.error_rate(data.test);
    }

    const arch::NetworkCost base =
        arch::estimate_cost(wl.topo, cfg, core::StructureKind::kDacAdc8);
    const arch::NetworkCost costs[3] = {
        base,
        arch::estimate_cost(wl.topo, cfg, core::StructureKind::kBinInputAdc),
        arch::estimate_cost(wl.topo, cfg, core::StructureKind::kSei)};
    const char* names[3] = {"DAC+ADC", "1-bit-Input+ADC", "SEI"};

    for (int s = 0; s < 3; ++s) {
      const double e_uj = costs[s].energy_uj_per_picture();
      const double esave =
          s == 0 ? 0.0
                 : arch::saving_pct(base.energy_pj.total(),
                                    costs[s].energy_pj.total());
      const double asave =
          s == 0 ? 0.0
                 : arch::saving_pct(base.area_um2.total(),
                                    costs[s].area_um2.total());
      t.row({c.net,
             std::to_string(c.max_size) + "x" + std::to_string(c.max_size),
             names[s],
             (skip_accuracy ? std::string("-")
                            : TextTable::pct(err[s])) +
                 " [" + c.paper[s].err + "]",
             TextTable::num(e_uj) + " [" + c.paper[s].energy + "]",
             (s == 0 ? std::string("-")
                     : TextTable::pct(esave)) +
                 " [" + c.paper[s].esave + "]",
             (s == 0 ? std::string("-")
                     : TextTable::pct(asave)) +
                 " [" + c.paper[s].asave + "]",
             TextTable::num(costs[s].gops_per_joule(), 0)});
    }
    t.separator();
  }
  t.write_csv_if(csv_path);
  std::printf("%s\n", t.str().c_str());

  // One-time programming cost of the SEI chips (not part of Table 5's
  // per-picture metric; reported for completeness).
  for (const Config& c : configs) {
    if (c.max_size != 512) continue;
    core::HardwareConfig cfg;
    const auto cost = arch::estimate_cost(
        workloads::workload_by_name(c.net).topo, cfg,
        core::StructureKind::kSei);
    const arch::ProgrammingCost pc = arch::programming_cost(cost);
    std::printf("programming %-9s: %lld cells, %.1f uJ once — amortized "
                "below 1%% of inference energy after %.0f pictures\n",
                c.net, pc.cells, pc.energy_uj,
                pc.amortized_below_1pct_pictures);
  }
  std::printf("\n");
  std::printf(
      "Shape check: SEI saves >90%% energy and 74-90%% area everywhere;\n"
      "the 1-bit+ADC halfway point only removes the DAC slice (~10-35%%);\n"
      "SEI exceeds 2000 GOPs/J while the baseline stays below 200.\n"
      "(*) = self-inconsistent cell in the paper, see EXPERIMENTS.md.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
