// Reproduces the §5.3 efficiency comparison: GOPs/J of the SEI structure
// vs the DAC+ADC RRAM baseline, a state-of-the-art FPGA accelerator [2]
// and an Nvidia K40-class GPU.
//
// Paper's claim: SEI achieves more than 2000 GOPs/J — about two orders of
// magnitude above the FPGA and GPU implementations.
#include <cstdio>

#include "arch/cost_model.hpp"
#include "arch/latency_model.hpp"
#include "arch/report.hpp"
#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "workloads/networks.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Energy efficiency (GOPs/J) platform comparison"))
    return 0;

  core::HardwareConfig cfg;
  TextTable t("Energy efficiency comparison (GOPs/J)");
  t.header({"Platform", "Workload", "GOPs/J", "vs FPGA", "vs GPU"});

  const auto refs = arch::platform_references();
  const double fpga = refs[0].gops_per_joule;
  const double gpu = refs[1].gops_per_joule;
  for (const auto& r : refs)
    t.row({r.name, "-", TextTable::num(r.gops_per_joule, 1),
           TextTable::num(r.gops_per_joule / fpga, 1) + "x",
           TextTable::num(r.gops_per_joule / gpu, 1) + "x"});
  t.separator();

  for (const char* name : {"network1", "network2", "network3"}) {
    const workloads::Workload wl = workloads::workload_by_name(name);
    for (auto kind :
         {core::StructureKind::kDacAdc8, core::StructureKind::kSei}) {
      const arch::NetworkCost cost = arch::estimate_cost(wl.topo, cfg, kind);
      const double g = cost.gops_per_joule();
      t.row({"RRAM " + core::to_string(kind), name, TextTable::num(g, 0),
             TextTable::num(g / fpga, 0) + "x",
             TextTable::num(g / gpu, 0) + "x"});
    }
  }
  std::printf("%s\n", t.str().c_str());

  // Time axis (extension): the paper trades buffers for power at constant
  // per-picture energy; this table shows the pipelined operating point.
  TextTable timing("Pipelined timing (kernel-reuse execution model)");
  timing.header({"Design", "Network", "Latency us/pic", "Throughput kfps",
                 "Avg power mW"});
  for (const char* name : {"network1", "network2", "network3"}) {
    const workloads::Workload wl = workloads::workload_by_name(name);
    for (auto kind :
         {core::StructureKind::kDacAdc8, core::StructureKind::kSei}) {
      const arch::NetworkCost cost = arch::estimate_cost(wl.topo, cfg, kind);
      const arch::NetworkTiming tm = arch::estimate_timing(cost);
      timing.row({"RRAM " + core::to_string(kind), name,
                  TextTable::num(tm.latency_us, 1),
                  TextTable::num(tm.throughput_kfps, 1),
                  TextTable::num(tm.average_power_mw, 1)});
    }
  }
  std::printf("%s\n", timing.str().c_str());
  std::printf(
      "Shape check (paper): SEI > 2000 GOPs/J, about two orders of\n"
      "magnitude above the FPGA [2] and GPU points; state-of-the-art\n"
      "CMOS designs burn 10-20 W, the SEI design runs at milliwatts.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
