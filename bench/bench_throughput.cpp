// Batch-evaluation throughput of the parallel execution engine: images/sec
// of SeiNetwork::error_rate at 1 thread vs N threads for every workload,
// with the determinism contract checked on the way (the error percentage
// must be bit-identical at both thread counts — docs/parallelism.md).
//
// Flags: --networks (csv), --images, --repeats, --threads, --read-noise,
// --json. Writes BENCH_throughput.json (schema sei-throughput-v1).
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/signals.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/sei_network.hpp"
#include "exec/thread_pool.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Best-of-`repeats` wall time of one error_rate batch, in seconds.
double measure_seconds(const core::SeiNetwork& net, const data::Dataset& d,
                       int images, int repeats, double* error_pct) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    const double err = net.error_rate(d, images);
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
    *error_pct = err;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string networks_csv =
      cli.get("networks", "network1,network2,network3");
  const int images = cli.get_int("images", 2000, "test images per batch");
  const int repeats = cli.get_int("repeats", 3, "timed runs, best taken");
  const double read_noise =
      cli.get_double("read-noise", 0.02, "read noise sigma (exercises RNG)");
  const std::string json_path = cli.get("json", "BENCH_throughput.json");
  if (!cli.validate("batch-evaluation throughput: 1 thread vs N threads"))
    return 0;
  SEI_CHECK_MSG(images > 0 && repeats > 0, "images/repeats must be positive");
  install_shutdown_handler();  // SIGINT/SIGTERM: finish the row, write JSON

  const int wide = exec::default_threads();
  std::printf("Throughput: SeiNetwork::error_rate, %d images, best of %d, "
              "1 vs %d threads\n\n", images, repeats, wide);

  data::DataBundle data = workloads::load_default_data(true);

  struct Row {
    std::string network;
    double err_pct = 0.0;
    double ips_1t = 0.0;
    double ips_nt = 0.0;
    double speedup = 0.0;
  };
  std::vector<Row> rows;
  bool deterministic = true;

  for (const std::string& name : split_csv(networks_csv)) {
    if (shutdown_requested()) break;
    workloads::Artifacts art = workloads::prepare_workload(name, data, {});
    core::HardwareConfig cfg;
    cfg.device.read_noise_sigma = read_noise;
    core::SeiNetwork net(art.qnet, cfg);
    const int n = std::min(images, data.test.size());

    Row row;
    row.network = name;
    double err_wide = 0.0;
    exec::set_default_threads(1);
    const double t1 = measure_seconds(net, data.test, n, repeats, &row.err_pct);
    exec::set_default_threads(wide);
    const double tn = measure_seconds(net, data.test, n, repeats, &err_wide);

    row.ips_1t = n / t1;
    row.ips_nt = n / tn;
    row.speedup = t1 / tn;
    if (err_wide != row.err_pct) {
      deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s error %.6f%% (1 thread) vs "
                   "%.6f%% (%d threads)\n",
                   name.c_str(), row.err_pct, err_wide, wide);
    }
    rows.push_back(row);
  }

  TextTable table("images/sec, 1 thread vs " + std::to_string(wide) +
                  " threads");
  table.header({"Network", "Error %", "1 thread", "N threads", "Speedup"});
  for (const Row& r : rows)
    table.row({r.network, TextTable::num(r.err_pct, 2),
               TextTable::num(r.ips_1t, 1), TextTable::num(r.ips_nt, 1),
               TextTable::num(r.speedup, 2) + "x"});
  std::printf("%s\n", table.str().c_str());

  JsonWriter j(json_path);
  j.begin_object();
  j.kv("schema", "sei-throughput-v1");
  j.kv("images", static_cast<long long>(images));
  j.kv("repeats", static_cast<long long>(repeats));
  j.kv("threads_wide", static_cast<long long>(wide));
  j.kv("read_noise_sigma", read_noise);
  j.kv("deterministic", deterministic);
  j.kv("interrupted", shutdown_requested());
  j.key("workloads");
  j.begin_array();
  for (const Row& r : rows) {
    j.begin_object();
    j.kv("network", r.network);
    j.kv("error_pct", r.err_pct);
    j.kv("images_per_sec_1t", r.ips_1t);
    j.kv("images_per_sec_nt", r.ips_nt);
    j.kv("speedup", r.speedup);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.commit();
  std::printf("wrote %s\n", json_path.c_str());

  return deterministic ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
