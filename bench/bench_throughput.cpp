// Batch-evaluation throughput of the parallel execution engine: images/sec
// of SeiNetwork::error_rate at 1 thread vs N threads for every workload,
// with the determinism contract checked on the way (the error percentage
// must be bit-identical at both thread counts — docs/parallelism.md).
//
// N defaults to exec::ThreadPool::effective_concurrency() — the CPUs the
// process can actually use (affinity mask + cgroup quota), not the host's
// hardware_concurrency. The historical ~1.0x "speedup" rows came from
// oversubscribing a 1-core container quota with 8 threads; the per-worker
// pool telemetry emitted here (busy time and chunks per worker, pool
// utilization) is what diagnosed it — see docs/observability.md.
//
// Flags: --networks (csv), --images, --repeats, --threads, --read-noise,
// --json, --metrics-out, --trace-out. Writes BENCH_throughput.json (schema
// sei-throughput-v2): per-repeat times, best-of-repeats rates for BOTH
// thread counts, per-worker utilization, live-metered energy, and a
// diagnosis block naming the parallelism bottleneck when speedup is flat.
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "arch/live_energy.hpp"
#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/signals.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/sei_network.hpp"
#include "exec/thread_pool.hpp"
#include "telemetry/flags.hpp"
#include "telemetry/span.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

struct Measurement {
  std::vector<double> seconds;  // one entry per repeat
  double best_seconds = 0.0;
  double error_pct = 0.0;
  exec::PoolStats pool;  // cumulative over the repeats (post-warmup)
};

/// Times `repeats` error_rate batches (after one untimed warmup that pages
/// in the dataset and spins up the pool) and snapshots the pool counters.
Measurement measure(const core::SeiNetwork& net, const data::Dataset& d,
                    int images, int repeats) {
  Measurement m;
  (void)net.error_rate(d, images);  // warmup, untimed
  exec::default_pool().reset_stats();
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    m.error_pct = net.error_rate(d, images);
    const double s = timer.seconds();
    m.seconds.push_back(s);
    if (r == 0 || s < m.best_seconds) m.best_seconds = s;
  }
  m.pool = exec::default_pool().stats();
  return m;
}

void write_repeats(JsonWriter& j, const char* key,
                   const std::vector<double>& seconds) {
  j.key(key);
  j.begin_array();
  for (double s : seconds) j.value(s);
  j.end_array();
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string networks_csv =
      cli.get("networks", "network1,network2,network3");
  const int images = cli.get_int("images", 2000, "test images per batch");
  const int repeats = cli.get_int("repeats", 3, "timed runs, best taken");
  const double read_noise =
      cli.get_double("read-noise", 0.02, "read noise sigma (exercises RNG)");
  const std::string json_path = cli.get("json", "BENCH_throughput.json");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("batch-evaluation throughput: 1 thread vs N threads")) {
    telemetry::telemetry_flush(tel);
    return 0;
  }
  SEI_CHECK_MSG(images > 0 && repeats > 0, "images/repeats must be positive");
  install_shutdown_handler();  // SIGINT/SIGTERM: finish the row, write JSON

  const int wide = exec::default_threads();
  const int effective = exec::ThreadPool::effective_concurrency();
  std::printf("Throughput: SeiNetwork::error_rate, %d images, best of %d, "
              "1 vs %d threads (effective cores: %d)\n\n",
              images, repeats, wide, effective);
  if (wide > effective)
    std::printf("note: %d threads oversubscribe the %d effective core(s) — "
                "expect no speedup beyond %dx\n\n",
                wide, effective, effective);

  data::DataBundle data = workloads::load_default_data(true);

  struct Row {
    std::string network;
    Measurement m1, mn;
    double speedup = 0.0;
    telemetry::EnergyBreakdown per_image_pj;
  };
  std::vector<Row> rows;
  std::vector<telemetry::EnergyMeter> meters;  // stable for the net lifetime
  meters.reserve(8);
  bool deterministic = true;

  for (const std::string& name : split_csv(networks_csv)) {
    if (shutdown_requested()) break;
    telemetry::Span span("bench.throughput.workload");
    workloads::Artifacts art = workloads::prepare_workload(name, data, {});
    core::HardwareConfig cfg;
    cfg.device.read_noise_sigma = read_noise;
    core::SeiNetwork net(art.qnet, cfg);
    meters.push_back(
        arch::make_energy_meter(art.qnet, cfg, core::StructureKind::kSei));
    net.set_meter(&meters.back());
    const int n = std::min(images, data.test.size());

    Row row;
    row.network = name;
    row.per_image_pj = meters.back().network_pj();
    exec::set_default_threads(1);
    row.m1 = measure(net, data.test, n, repeats);
    exec::set_default_threads(wide);
    row.mn = measure(net, data.test, n, repeats);

    // Best-of-repeats on BOTH sides: the ratio of two minima, not of
    // whichever single pair happened to land together.
    row.speedup = row.m1.best_seconds / row.mn.best_seconds;
    if (row.mn.error_pct != row.m1.error_pct) {
      deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s error %.6f%% (1 thread) vs "
                   "%.6f%% (%d threads)\n",
                   name.c_str(), row.m1.error_pct, row.mn.error_pct, wide);
    }
    rows.push_back(std::move(row));
  }

  TextTable table("images/sec, 1 thread vs " + std::to_string(wide) +
                  " threads");
  table.header({"Network", "Error %", "1 thread", "N threads", "Speedup",
                "uJ/image"});
  for (const Row& r : rows)
    table.row({r.network, TextTable::num(r.m1.error_pct, 2),
               TextTable::num(std::min(images, data.test.size()) /
                                  r.m1.best_seconds, 1),
               TextTable::num(std::min(images, data.test.size()) /
                                  r.mn.best_seconds, 1),
               TextTable::num(r.speedup, 2) + "x",
               TextTable::num(r.per_image_pj.total() * 1e-6, 3)});
  std::printf("%s\n", table.str().c_str());

  JsonWriter j(json_path);
  j.begin_object();
  j.kv("schema", "sei-throughput-v2");
  j.kv("images", static_cast<long long>(images));
  j.kv("repeats", static_cast<long long>(repeats));
  j.kv("threads_wide", static_cast<long long>(wide));
  j.kv("effective_cores", static_cast<long long>(effective));
  j.kv("read_noise_sigma", read_noise);
  j.kv("deterministic", deterministic);
  j.kv("interrupted", shutdown_requested());
  j.key("workloads");
  j.begin_array();
  for (const Row& r : rows) {
    const int n = std::min(images, data.test.size());
    j.begin_object();
    j.kv("network", r.network);
    j.kv("error_pct", r.m1.error_pct);
    j.kv("images_per_sec_1t", n / r.m1.best_seconds);
    j.kv("images_per_sec_nt", n / r.mn.best_seconds);
    j.kv("speedup", r.speedup);
    write_repeats(j, "seconds_1t", r.m1.seconds);
    write_repeats(j, "seconds_nt", r.mn.seconds);
    j.kv("energy_uj_per_image", r.per_image_pj.total() * 1e-6);
    j.kv("interface_energy_pct",
         100.0 * r.per_image_pj.interface() / r.per_image_pj.total());

    // Per-worker pool accounting for the wide run: worker 0 is the
    // submitting thread. Near-zero busy time on workers 1..N-1, or
    // utilization ~1/N, means the workers had nothing useful to do —
    // the flat-speedup signature on a quota-limited box.
    const double wall_ns = 1e9 * [&] {
      double t = 0.0;
      for (double s : r.mn.seconds) t += s;
      return t;
    }();
    j.key("pool_workers_nt");
    j.begin_array();
    for (const exec::WorkerStats& w : r.mn.pool.workers) {
      j.begin_object();
      j.kv("busy_ms", static_cast<double>(w.busy_ns) * 1e-6);
      j.kv("chunks", static_cast<long long>(w.chunks));
      j.end_object();
    }
    j.end_array();
    j.kv("pool_jobs_nt", static_cast<long long>(r.mn.pool.jobs));
    j.kv("pool_inline_jobs_nt",
         static_cast<long long>(r.mn.pool.inline_jobs));
    j.kv("pool_utilization_nt",
         wall_ns > 0.0 ? static_cast<double>(r.mn.pool.busy_ns_total()) /
                             (wall_ns * static_cast<double>(
                                            r.mn.pool.workers.size()))
                       : 0.0);
    j.end_object();
  }
  j.end_array();

  // Honest diagnosis: with wide == effective the comparison is fair; when
  // the box only has one effective core the 1-vs-N comparison cannot show
  // a speedup at all, and the JSON says so instead of implying a regression.
  j.key("diagnosis");
  j.begin_object();
  j.kv("threads_resolve_to_effective_cores", wide <= effective);
  j.kv("single_core_host", effective == 1);
  j.kv("note",
       effective == 1
           ? "1 effective core: N-thread speedup is bounded at 1.0x; "
             "historical 0.98-1.05x rows were oversubscription noise"
           : "speedup is bounded by effective_cores");
  j.end_object();
  j.end_object();
  j.commit();
  std::printf("wrote %s\n", json_path.c_str());

  telemetry::telemetry_flush(tel);
  return deterministic ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
