// Batch-evaluation throughput of the SEI engines: images/sec of
// SeiNetwork::error_rate for the bit-packed AND+popcount core vs the
// scalar reference path (both run in one invocation, single-threaded),
// plus the N-thread packed run for the parallelism determinism contract.
//
// The packed-vs-scalar ratio is the headline: on this class of host the
// cgroup clamps the process to ~1 effective core, so per-core kernel
// speed is the only lever (docs/kernels.md). Error percentages must be
// bit-identical between the two engines and across thread counts —
// both are checked and the process exits nonzero on a mismatch.
//
// Flags: --networks (csv), --images, --repeats, --threads, --read-noise,
// --json, --metrics-out, --trace-out. Read noise defaults to 0 so the
// comparison measures the kernels, not the gaussian sampler; pass
// --read-noise 0.02 to exercise the RNG path (identical draws by
// construction — decide_position consumes identical block sums).
// Writes BENCH_throughput.json (schema sei-throughput-v3).
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "arch/live_energy.hpp"
#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/signals.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/sei_network.hpp"
#include "exec/thread_pool.hpp"
#include "telemetry/flags.hpp"
#include "telemetry/span.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

struct Measurement {
  std::vector<double> seconds;  // one entry per repeat
  double best_seconds = 0.0;
  double error_pct = 0.0;
};

/// Times `repeats` error_rate batches (after one untimed warmup that pages
/// in the dataset and spins up the pool).
Measurement measure(const core::SeiNetwork& net, const data::Dataset& d,
                    int images, int repeats) {
  Measurement m;
  (void)net.error_rate(d, images);  // warmup, untimed
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    m.error_pct = net.error_rate(d, images);
    const double s = timer.seconds();
    m.seconds.push_back(s);
    if (r == 0 || s < m.best_seconds) m.best_seconds = s;
  }
  return m;
}

void write_repeats(JsonWriter& j, const char* key,
                   const std::vector<double>& seconds) {
  j.key(key);
  j.begin_array();
  for (double s : seconds) j.value(s);
  j.end_array();
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string networks_csv =
      cli.get("networks", "network1,network2,network3");
  const int images = cli.get_int("images", 2000, "test images per batch");
  const int repeats = cli.get_int("repeats", 3, "timed runs, best taken");
  const double read_noise = cli.get_double(
      "read-noise", 0.0, "read noise sigma (0 = pure-kernel comparison)");
  const int skip_bound = cli.get_int(
      "skip-bound", -1,
      "word-skip bound on every SEI stage (-1 = dense, 0 = skip idle words "
      "only — bit-identical; docs/sparsity.md)");
  const std::string json_path = cli.get("json", "BENCH_throughput.json");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("SEI throughput: packed AND+popcount core vs scalar "
                    "reference, plus N-thread determinism")) {
    telemetry::telemetry_flush(tel);
    return 0;
  }
  SEI_CHECK_MSG(images > 0 && repeats > 0, "images/repeats must be positive");
  install_shutdown_handler();  // SIGINT/SIGTERM: finish the row, write JSON

  const int wide = exec::default_threads();
  const int effective = exec::ThreadPool::effective_concurrency();
  std::printf("Throughput: SeiNetwork::error_rate, %d images, best of %d, "
              "packed vs scalar at 1 thread (+%d-thread packed run, "
              "effective cores: %d, read noise %g)\n\n",
              images, repeats, wide, effective, read_noise);

  data::DataBundle data = workloads::load_default_data(true);

  struct Row {
    std::string network;
    Measurement packed1, scalar1, packedn;
    double packed_speedup = 0.0;  // scalar 1t / packed 1t
    double thread_speedup = 0.0;  // packed 1t / packed Nt
    int packed_stages = 0;
    int stage_count = 0;
    telemetry::EnergyBreakdown per_image_pj;
  };
  std::vector<Row> rows;
  std::vector<telemetry::EnergyMeter> meters;  // stable for the net lifetime
  meters.reserve(8);
  bool identical = true;

  for (const std::string& name : split_csv(networks_csv)) {
    if (shutdown_requested()) break;
    telemetry::Span span("bench.throughput.workload");
    workloads::Artifacts art = workloads::prepare_workload(name, data, {});
    core::HardwareConfig cfg;
    cfg.device.read_noise_sigma = read_noise;
    core::SeiNetwork net(art.qnet, cfg);
    if (skip_bound >= 0)
      net.set_skip_bounds(std::vector<int>(
          static_cast<std::size_t>(net.stage_count()), skip_bound));
    meters.push_back(
        arch::make_energy_meter(art.qnet, cfg, core::StructureKind::kSei));
    net.set_meter(&meters.back());
    const int n = std::min(images, data.test.size());

    Row row;
    row.network = name;
    row.per_image_pj = meters.back().network_pj();
    row.packed_stages = net.packed_stage_count();
    row.stage_count = net.stage_count();

    exec::set_default_threads(1);
    net.set_packed_eval(true);
    row.packed1 = measure(net, data.test, n, repeats);
    net.set_packed_eval(false);
    row.scalar1 = measure(net, data.test, n, repeats);
    net.set_packed_eval(true);
    exec::set_default_threads(wide);
    row.packedn = measure(net, data.test, n, repeats);

    // Best-of-repeats on BOTH sides: the ratio of two minima, not of
    // whichever single pair happened to land together.
    row.packed_speedup = row.scalar1.best_seconds / row.packed1.best_seconds;
    row.thread_speedup = row.packed1.best_seconds / row.packedn.best_seconds;
    if (row.scalar1.error_pct != row.packed1.error_pct) {
      identical = false;
      std::fprintf(stderr,
                   "ENGINE MISMATCH: %s error %.6f%% (scalar) vs %.6f%% "
                   "(packed)\n",
                   name.c_str(), row.scalar1.error_pct, row.packed1.error_pct);
    }
    if (row.packedn.error_pct != row.packed1.error_pct) {
      identical = false;
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %s error %.6f%% (1 thread) vs "
                   "%.6f%% (%d threads)\n",
                   name.c_str(), row.packed1.error_pct, row.packedn.error_pct,
                   wide);
    }
    rows.push_back(std::move(row));
  }

  TextTable table("images/sec, packed vs scalar (1 thread)");
  table.header({"Network", "Error %", "Scalar", "Packed", "Speedup",
                "Stages", "uJ/image"});
  for (const Row& r : rows) {
    const int n = std::min(images, data.test.size());
    table.row({r.network, TextTable::num(r.packed1.error_pct, 2),
               TextTable::num(n / r.scalar1.best_seconds, 1),
               TextTable::num(n / r.packed1.best_seconds, 1),
               TextTable::num(r.packed_speedup, 2) + "x",
               std::to_string(r.packed_stages) + "/" +
                   std::to_string(r.stage_count),
               TextTable::num(r.per_image_pj.total() * 1e-6, 3)});
  }
  std::printf("%s\n", table.str().c_str());

  JsonWriter j(json_path);
  j.begin_object();
  j.kv("schema", "sei-throughput-v3");
  j.kv("images", static_cast<long long>(images));
  j.kv("repeats", static_cast<long long>(repeats));
  j.kv("threads_wide", static_cast<long long>(wide));
  j.kv("effective_cores", static_cast<long long>(effective));
  j.kv("read_noise_sigma", read_noise);
  j.kv("engines_identical", identical);
  j.kv("interrupted", shutdown_requested());
  j.key("workloads");
  j.begin_array();
  for (const Row& r : rows) {
    const int n = std::min(images, data.test.size());
    j.begin_object();
    j.kv("network", r.network);
    j.kv("error_pct", r.packed1.error_pct);
    j.kv("error_pct_scalar", r.scalar1.error_pct);
    j.kv("images_per_sec_scalar_1t", n / r.scalar1.best_seconds);
    j.kv("images_per_sec_packed_1t", n / r.packed1.best_seconds);
    j.kv("images_per_sec_packed_nt", n / r.packedn.best_seconds);
    j.kv("packed_speedup", r.packed_speedup);
    j.kv("thread_speedup", r.thread_speedup);
    j.kv("packed_stages", static_cast<long long>(r.packed_stages));
    j.kv("stage_count", static_cast<long long>(r.stage_count));
    write_repeats(j, "seconds_scalar_1t", r.scalar1.seconds);
    write_repeats(j, "seconds_packed_1t", r.packed1.seconds);
    write_repeats(j, "seconds_packed_nt", r.packedn.seconds);
    j.kv("energy_uj_per_image", r.per_image_pj.total() * 1e-6);
    j.kv("interface_energy_pct",
         100.0 * r.per_image_pj.interface() / r.per_image_pj.total());
    j.end_object();
  }
  j.end_array();

  // Honest context for the thread_speedup column: on a quota-limited box
  // the N-thread run cannot beat 1 thread, which is exactly why the
  // packed-vs-scalar per-core comparison is the headline number.
  j.key("diagnosis");
  j.begin_object();
  j.kv("threads_resolve_to_effective_cores", wide <= effective);
  j.kv("single_core_host", effective == 1);
  j.kv("note",
       effective == 1
           ? "1 effective core: thread_speedup is bounded at 1.0x; the "
             "packed_speedup column is the per-core kernel comparison"
           : "thread_speedup is bounded by effective_cores");
  j.end_object();
  j.end_object();
  j.commit();
  std::printf("wrote %s\n", json_path.c_str());

  telemetry::telemetry_flush(tel);
  return identical ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
