// Reproduces Table 3: classification error before and after the 1-bit
// quantization of intermediate data (Algorithm 1), for the three Table 2
// networks.
//
// Paper (real MNIST): Network 1: 0.93 → 1.63, Network 2: 2.88 → 3.42,
// Network 3: 1.53 → 2.07 (percent error). On the synthetic substitute the
// absolute errors differ but the claim under reproduction is the *small
// delta* (quantization costs on the order of 1%).
//
// Flags: --search-images N (Algorithm 1 subset on a cold cache).
#include <cstdio>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const int search_images = cli.get_int("search-images", 5000);
  const std::string csv_path =
      cli.get("csv", "", "write the table as CSV to this path");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Table 3: error rate of the quantization method")) return 0;

  data::DataBundle data = workloads::load_default_data(true);

  struct PaperRow {
    const char* net;
    double before, after;
  };
  const PaperRow paper[] = {{"network1", 0.93, 1.63},
                            {"network2", 2.88, 3.42},
                            {"network3", 1.53, 2.07}};

  TextTable t("Table 3 reproduction — error rate (%) on the test set");
  t.header({"Network", "Before (paper)", "After (paper)", "Before (ours)",
            "After (ours)", "Delta (ours)"});
  for (const PaperRow& row : paper) {
    workloads::PipelineOptions opts;
    opts.verbose = true;
    opts.search.max_search_images = search_images;
    workloads::Artifacts art = workloads::prepare_workload(row.net, data, opts);
    const double before = art.float_test_error_pct;
    const double after = art.quant_error(data.test);
    t.row({row.net, TextTable::pct(row.before), TextTable::pct(row.after),
           TextTable::pct(before), TextTable::pct(after),
           TextTable::pct(after - before)});
  }
  t.write_csv_if(csv_path);
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Shape check: after-quantization error stays within a few percent of\n"
      "the float baseline on every network (paper deltas: 0.70 / 0.54 / "
      "0.54).\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
