// Ablation of Algorithm 1 itself:
//   (a) the threshold → training-accuracy curve per layer (the data behind
//       the greedy search; the paper describes but does not plot it);
//   (b) the drive-level calibration extension on vs off;
//   (c) search-grid resolution sensitivity.
//
// This bench re-runs the search from the cached float model (it does not
// touch the shared .qnet cache), so it costs a few search passes.
//
// Flags: --network network2, --search-images 2000, --curve-points 20.
#include <cstdio>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "workloads/cache.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const int search_images = cli.get_int("search-images", 2000);
  const int curve_points = cli.get_int("curve-points", 20);
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Algorithm 1 ablations")) return 0;

  data::DataBundle data = workloads::load_default_data(true);
  const workloads::Workload wl = workloads::workload_by_name(net_name);

  auto fresh_net = [&]() { return workloads::load_or_train(wl, data, true); };

  // (a) + default run.
  quant::SearchConfig base_cfg;
  base_cfg.max_search_images = search_images;
  nn::Network net = fresh_net();
  quant::QuantizationResult res =
      quant::quantize_network(net, wl.topo, data.train, base_cfg);
  const double default_err = res.qnet.error_rate(data.test);

  std::printf("Algorithm 1 ablation — %s\n\n", net_name.c_str());
  for (const auto& tr : res.traces) {
    TextTable t("(a) Stage " + std::to_string(tr.stage) +
                " threshold search curve (scale " +
                TextTable::num(tr.scale, 3) + ", best t=" +
                TextTable::num(tr.best_threshold, 3) + ", drive=" +
                TextTable::num(tr.drive_level, 3) + ")");
    t.header({"Threshold", "Training accuracy"});
    const std::size_t stride =
        std::max<std::size_t>(1, tr.curve.size() / curve_points);
    for (std::size_t i = 0; i < tr.curve.size(); i += stride)
      t.row({TextTable::num(tr.curve[i].first, 3),
             TextTable::pct(tr.curve[i].second)});
    std::printf("%s\n", t.str().c_str());
  }

  // (b) drive calibration off.
  quant::SearchConfig no_drive = base_cfg;
  no_drive.calibrate_drive = false;
  nn::Network net2 = fresh_net();
  const double no_drive_err =
      quant::quantize_network(net2, wl.topo, data.train, no_drive)
          .qnet.error_rate(data.test);

  // (c) coarse grid.
  quant::SearchConfig coarse = base_cfg;
  coarse.step = 0.05;
  nn::Network net3 = fresh_net();
  const double coarse_err =
      quant::quantize_network(net3, wl.topo, data.train, coarse)
          .qnet.error_rate(data.test);

  TextTable t("(b)+(c) Variant comparison (test error)");
  t.header({"Variant", "Error"});
  t.row({"default (fine grid + drive calibration)",
         TextTable::pct(default_err)});
  t.row({"drive calibration OFF (paper-literal)",
         TextTable::pct(no_drive_err)});
  t.row({"coarse grid (step 0.05)", TextTable::pct(coarse_err)});
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Reading the curves: accuracy rises steeply away from t=0 (noise\n"
      "bits suppressed), plateaus, then falls when real activations are\n"
      "lost — the unimodal shape that makes the brute-force scan cheap.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
