// Accuracy-vs-skip-rate and energy-vs-skip-rate for the runtime sparsity
// engine (docs/sparsity.md): each workload is calibrated offline
// (Algorithm-1-style per-stage bound sweep on training data), then the
// calibrated network runs the test set with activation-proportional
// metering — only the rows whose transmission gates actually open are
// charged. A uniform-bound ladder around the calibrated point maps out the
// accuracy/energy trade-off curve.
//
// Acts as the sparsity gate for CI: exits nonzero if the calibrated point
// on any whole-crossbar workload drops more than --max-accuracy-drop
// percentage points of accuracy or skips fewer than --min-skip-rate
// percent of sub-crossbar input words.
//
// Flags: --networks (csv), --images, --calib-images, --margin,
// --skip-bound (uniform override, skips calibration), --min-skip-rate,
// --max-accuracy-drop, --save-config, --json, plus the shared telemetry
// flags. Writes BENCH_sparsity.json (schema sei-sparsity-v1).
#include <cstdio>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "arch/live_energy.hpp"
#include "common/cli.hpp"
#include "common/io.hpp"
#include "common/signals.hpp"
#include "common/table.hpp"
#include "core/sei_network.hpp"
#include "exec/thread_pool.hpp"
#include "sparsity/activity.hpp"
#include "sparsity/calibrate.hpp"
#include "sparsity/config.hpp"
#include "telemetry/flags.hpp"
#include "telemetry/span.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Per-image metered energy over the first `n` test images; with skip
/// bounds set every stage charges its actual activated rows.
telemetry::EnergyAccum measure_energy(const core::SeiNetwork& net,
                                      const telemetry::EnergyMeter& meter,
                                      const data::Dataset& d, int n) {
  const std::size_t per_image =
      d.images.numel() / static_cast<std::size_t>(d.size());
  return exec::parallel_reduce<telemetry::EnergyAccum>(
      n, exec::kEvalGrain, telemetry::EnergyAccum{},
      [&](int lo, int hi) {
        telemetry::EnergyAccum acc;
        core::EvalContext ctx;
        ctx.meter = &meter;
        ctx.energy = &acc;
        for (int i = lo; i < hi; ++i) {
          const std::span<const float> img{
              d.images.data() + static_cast<std::size_t>(i) * per_image,
              per_image};
          net.predict(img, ctx, i);
        }
        acc.images = static_cast<std::uint64_t>(hi - lo);
        return acc;
      },
      [](telemetry::EnergyAccum acc, const telemetry::EnergyAccum& part) {
        acc.merge(part);
        return acc;
      });
}

struct Point {
  std::string label;          // "dense", "calibrated", "bound=N"
  std::vector<int> bounds;    // empty for dense
  double error_pct = 0.0;
  double skip_rate = 0.0;      // masked words / evaluated words
  double row_activity = 0.0;   // active rows / nominal rows
  double charged_rows = 0.0;   // charged rows / nominal rows
  double uj_per_image = 0.0;
};

struct Row {
  std::string network;
  std::string variant;
  bool gated = false;  // whole-crossbar rows carry the CI gate
  double dense_error_pct = 0.0;
  double dense_uj_per_image = 0.0;
  Point calibrated;
  std::vector<Point> ladder;
  sparsity::SparsityConfig config;
};

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string networks_csv =
      cli.get("networks", "network1,network2,network3");
  const int images = cli.get_int("images", 1000, "test images to meter");
  const int calib_images =
      cli.get_int("calib-images", 512, "calibration images (train set)");
  const double margin = cli.get_double(
      "margin", 0.5, "allowed accuracy drop during calibration, pct points");
  const int skip_bound = cli.get_int(
      "skip-bound", -1, "uniform skip bound override (-1 = calibrate)");
  const double min_skip_rate = cli.get_double(
      "min-skip-rate", 30.0, "gate: min % of words masked (whole rows)");
  const double max_drop = cli.get_double(
      "max-accuracy-drop", 0.5, "gate: max accuracy drop vs dense, pct");
  const std::string save_config =
      cli.get("save-config", "", "write calibrated bounds to this path");
  const std::string json_path = cli.get("json", "BENCH_sparsity.json");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("SEI runtime sparsity: calibrated skip bounds, "
                    "accuracy vs skip rate vs energy")) {
    telemetry::telemetry_flush(tel);
    return 0;
  }
  SEI_CHECK_MSG(images > 0 && calib_images > 0, "images must be positive");
  install_shutdown_handler();

  std::printf("Sparsity: calibrated sub-crossbar skipping, %d test images, "
              "margin %.2f pts (gate: skip >= %.0f%%, drop <= %.2f pts)\n\n",
              images, margin, min_skip_rate, max_drop);

  data::DataBundle data = workloads::load_default_data(true);
  const int n = std::min(images, data.test.size());

  struct Variant {
    const char* tag;
    int max_rows;
    bool homogenize;
    bool gated;
  };
  const Variant variants[] = {{"whole", 0, true, true},
                              {"split64", 64, true, false},
                              {"split64-natural", 64, false, false}};

  std::vector<Row> rows;
  bool gate_ok = true;

  for (const std::string& name : split_csv(networks_csv)) {
    if (shutdown_requested()) break;
    telemetry::Span span("bench.sparsity.workload");
    workloads::Artifacts art = workloads::prepare_workload(name, data, {});
    for (const Variant& v : variants) {
      if (shutdown_requested()) break;
      core::HardwareConfig cfg;
      if (v.max_rows > 0) cfg.limits.max_rows = v.max_rows;
      cfg.homogenize = v.homogenize;
      core::SeiNetwork net(art.qnet, cfg);
      const telemetry::EnergyMeter meter =
          arch::make_energy_meter(art.qnet, cfg, core::StructureKind::kSei);

      Row row;
      row.network = name;
      row.variant = v.tag;
      row.gated = v.gated;
      row.dense_error_pct = net.error_rate(data.test, n);
      row.dense_uj_per_image = meter.network_pj().total() * 1e-6;

      auto measure_point = [&](const std::string& label,
                               std::vector<int> bounds) {
        Point p;
        p.label = label;
        net.set_skip_bounds(bounds);
        p.bounds = std::move(bounds);
        p.error_pct = net.error_rate(data.test, n);
        const sparsity::ActivityEstimator act =
            sparsity::estimate_activity(net, data.test, n);
        p.skip_rate = act.skip_rate();
        p.row_activity = act.row_activity();
        p.charged_rows = act.charged_fraction();
        const telemetry::EnergyAccum e =
            measure_energy(net, meter, data.test, n);
        p.uj_per_image = e.joules_per_image() * 1e6;
        return p;
      };

      if (skip_bound >= 0) {
        // Shared --skip-bound override: uniform bound, no calibration.
        row.calibrated = measure_point(
            "bound=" + std::to_string(skip_bound),
            std::vector<int>(static_cast<std::size_t>(net.stage_count()),
                             skip_bound));
        row.config.bounds = row.calibrated.bounds;
        row.config.network = name;
        row.config.base_error_pct = row.dense_error_pct;
        row.config.calib_error_pct = row.calibrated.error_pct;
        row.config.skip_rate = row.calibrated.skip_rate;
      } else {
        sparsity::CalibrationOptions opt;
        opt.max_images = calib_images;
        opt.accuracy_margin_pct = margin;
        row.config = sparsity::calibrate(net, data.train, name, opt);
        row.calibrated = measure_point("calibrated", row.config.bounds);
      }

      // Uniform-bound ladder: the trade-off curve around the calibrated
      // point (bound 0 doubles as the bit-identity anchor: its error must
      // equal the dense error). Bounds are per-word popcount thresholds
      // (0..8 for 9-row words).
      for (const int b : {0, 1, 2, 3}) {
        row.ladder.push_back(measure_point(
            "bound=" + std::to_string(b),
            std::vector<int>(static_cast<std::size_t>(net.stage_count()),
                             b)));
      }
      if (row.ladder[0].error_pct != row.dense_error_pct) {
        gate_ok = false;
        std::fprintf(stderr,
                     "BIT-IDENTITY VIOLATION: %s/%s bound=0 error %.6f%% vs "
                     "dense %.6f%%\n",
                     name.c_str(), v.tag, row.ladder[0].error_pct,
                     row.dense_error_pct);
      }
      if (row.gated) {
        const double drop = row.calibrated.error_pct - row.dense_error_pct;
        if (drop > max_drop || 100.0 * row.calibrated.skip_rate <
                                   min_skip_rate) {
          gate_ok = false;
          std::fprintf(stderr,
                       "SPARSITY GATE FAILED: %s drop %.2f pts (max %.2f), "
                       "skip rate %.1f%% (min %.0f%%)\n",
                       name.c_str(), drop, max_drop,
                       100.0 * row.calibrated.skip_rate, min_skip_rate);
        }
      }
      if (!save_config.empty() && v.gated && skip_bound < 0)
        sparsity::save_sparsity_config(row.config,
                                       save_config + "." + name);
      rows.push_back(std::move(row));
    }
  }

  TextTable table("calibrated sub-crossbar skipping (test set)");
  table.header({"Network", "Variant", "Dense %", "Sparse %", "Skip %",
                "Rows %", "uJ dense", "uJ sparse", "Saved %"});
  for (const Row& r : rows) {
    const double saved =
        100.0 * (1.0 - r.calibrated.uj_per_image / r.dense_uj_per_image);
    table.row({r.network, r.variant, TextTable::num(r.dense_error_pct, 2),
               TextTable::num(r.calibrated.error_pct, 2),
               TextTable::num(100.0 * r.calibrated.skip_rate, 1),
               TextTable::num(100.0 * r.calibrated.charged_rows, 1),
               TextTable::num(r.dense_uj_per_image, 3),
               TextTable::num(r.calibrated.uj_per_image, 3),
               TextTable::num(saved, 1)});
  }
  std::printf("%s\n", table.str().c_str());

  const auto write_point = [](JsonWriter& j, const Point& p) {
    j.begin_object();
    j.kv("label", p.label);
    j.key("bounds");
    j.begin_array();
    for (const int b : p.bounds) j.value(static_cast<long long>(b));
    j.end_array();
    j.kv("error_pct", p.error_pct);
    j.kv("skip_rate", p.skip_rate);
    j.kv("row_activity", p.row_activity);
    j.kv("charged_row_fraction", p.charged_rows);
    j.kv("energy_uj_per_image", p.uj_per_image);
    j.end_object();
  };

  JsonWriter j(json_path);
  j.begin_object();
  j.kv("schema", "sei-sparsity-v1");
  j.kv("images", static_cast<long long>(n));
  j.kv("calib_images", static_cast<long long>(calib_images));
  j.kv("accuracy_margin_pct", margin);
  j.kv("min_skip_rate_pct", min_skip_rate);
  j.kv("max_accuracy_drop_pct", max_drop);
  j.kv("uniform_skip_bound", static_cast<long long>(skip_bound));
  j.kv("gate_ok", gate_ok);
  j.kv("interrupted", shutdown_requested());
  j.key("workloads");
  j.begin_array();
  for (const Row& r : rows) {
    j.begin_object();
    j.kv("network", r.network);
    j.kv("variant", r.variant);
    j.kv("gated", r.gated);
    j.kv("dense_error_pct", r.dense_error_pct);
    j.kv("dense_uj_per_image", r.dense_uj_per_image);
    j.kv("energy_saved_pct",
         100.0 * (1.0 - r.calibrated.uj_per_image / r.dense_uj_per_image));
    j.kv("calib_base_error_pct", r.config.base_error_pct);
    j.kv("calib_error_pct", r.config.calib_error_pct);
    j.key("calibrated");
    write_point(j, r.calibrated);
    j.key("ladder");
    j.begin_array();
    for (const Point& p : r.ladder) write_point(j, p);
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.commit();
  std::printf("wrote %s (gate %s)\n", json_path.c_str(),
              gate_ok ? "ok" : "FAILED");

  telemetry::telemetry_flush(tel);
  return gate_ok && !shutdown_requested() ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "bench_sparsity: %s\n", e.what());
  return 1;
}
