// Reproduces Table 4: error rate of the splitting methods on Network 1 at
// maximum crossbar sizes 512 and 256.
//
// Paper rows (real MNIST):
//   Original CNN            0.93 / 0.93
//   Quantization            1.63 / 1.63
//   Random Order Splitting  3.90–45.89 / 4.44–49.03   (500 random orders)
//   Matrix Homogenization   1.78 / 2.29
//   Dynamic Threshold       1.52 / 1.82
//
// The paper's "directly divide the threshold into K parts" rule leaves the
// digital combination of the K block bits under-specified; its example
// ("0,0,1 is recognized as 0") pins it to an AND-like rule. We therefore
// report the random/natural-order rows under all three digital vote rules
// (OR = 1-of-K, majority, AND = K-of-K): the fragile OR/AND ends reproduce
// the paper's catastrophic range, while majority is intrinsically robust —
// a reproduction finding documented in EXPERIMENTS.md. The homogenization
// row uses the majority default; the dynamic-threshold row additionally
// optimizes the vote and the β slope on the training set (the paper's "new
// digital threshold" + posterior compensation).
//
// Flags: --orders N (default 100), --order-images N (default 500),
//        --sizes "512,256".
#include <cstdio>
#include <sstream>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "core/dyn_opt.hpp"
#include "split/homogenize.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

std::vector<int> parse_sizes(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  SEI_CHECK_MSG(!out.empty(), "no crossbar sizes given");
  return out;
}

/// First hidden stage that splits into multiple crossbars.
int first_split_stage(const core::SeiNetwork& net) {
  for (int s = 0; s + 1 < net.stage_count(); ++s)
    if (net.layer(s).block_count > 1) return s;
  return -1;
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const int n_orders = cli.get_int("orders", 100, "random row orders");
  const int order_images =
      cli.get_int("order-images", 500, "test images per random order");
  const std::string sizes_csv = cli.get("sizes", "512,256");
  const std::string net_name = cli.get("network", "network1");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Table 4: error rate of the splitting methods")) return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});
  const double float_err = art.float_test_error_pct;
  const double quant_err = art.quant_error(data.test);

  std::printf("Table 4 reproduction — %s (paper values for real MNIST in "
              "brackets)\n\n", net_name.c_str());

  for (int max_size : parse_sizes(sizes_csv)) {
    core::HardwareConfig cfg;
    cfg.limits.max_rows = max_size;
    cfg.limits.max_cols = max_size;

    core::SeiNetwork net(art.qnet, cfg);
    const int stage = first_split_stage(net);
    SEI_CHECK_MSG(stage >= 0, "no hidden stage splits at this crossbar size");
    const int k = net.layer(stage).block_count;
    const int rows = art.qnet.layers[static_cast<std::size_t>(stage)].geom.rows;
    const int majority = (k + 1) / 2;

    TextTable t("Max crossbar size " + std::to_string(max_size) + "x" +
                std::to_string(max_size) + "  (stage " +
                std::to_string(stage) + " splits into K=" + std::to_string(k) +
                " crossbars)");
    t.header({"Method", "Error rate"});
    t.row({"Original CNN  [paper 0.93 / 0.93]", TextTable::pct(float_err)});
    t.row({"Quantization  [paper 1.63 / 1.63]", TextTable::pct(quant_err)});
    t.separator();

    // Natural and random orders under the three vote rules.
    const auto orders = split::random_orders(rows, n_orders, 20160605);
    auto inputs = net.cache_stage_inputs(data.test, stage, order_images);
    struct Rule {
      const char* name;
      int vote;
    };
    const Rule rules[] = {{"OR (1-of-K)", 1},
                          {"majority", majority},
                          {"AND (K-of-K)", k}};
    for (const Rule& rule : rules) {
      net.remap_layer(stage, split::natural_order(rows));
      net.layer(stage).vote_threshold = rule.vote;
      net.layer(stage).dyn_beta = 0.0f;
      const double nat = net.error_rate_from(data.test, stage, inputs);
      double lo = 100.0, hi = 0.0;
      for (const auto& order : orders) {
        net.remap_layer(stage, order);
        net.layer(stage).vote_threshold = rule.vote;
        net.layer(stage).dyn_beta = 0.0f;
        const double e = net.error_rate_from(data.test, stage, inputs);
        lo = std::min(lo, e);
        hi = std::max(hi, e);
      }
      t.row({std::string("Natural order, ") + rule.name, TextTable::pct(nat)});
      t.row({std::string("Random order x") + std::to_string(n_orders) + ", " +
                 rule.name + "  [paper 3.90-45.89 / 4.44-49.03]",
             TextTable::pct(lo) + " - " + TextTable::pct(hi)});
    }
    t.separator();

    // Matrix homogenization (majority vote, no dynamic compensation).
    net.remap_layer(stage, core::default_row_order(
                               art.qnet.layers[static_cast<std::size_t>(stage)],
                               cfg));
    net.layer(stage).vote_threshold = majority;
    net.layer(stage).dyn_beta = 0.0f;
    t.row({"Matrix Homogenization  [paper 1.78 / 2.29]",
           TextTable::pct(net.error_rate(data.test))});

    // Dynamic threshold: optimize vote + beta on the training set.
    core::DynThreshResult dyn = core::optimize_dynamic_threshold(net, data.train);
    t.row({"Dynamic Threshold  [paper 1.52 / 1.82]",
           TextTable::pct(net.error_rate(data.test))});
    std::printf("%s", t.str().c_str());
    for (const auto& c : dyn.choices)
      std::printf("  dyn-threshold choice: stage %d K=%d vote=%d beta=%.3f "
                  "(train err %.2f%% -> %.2f%%)\n",
                  c.stage, c.block_count, c.vote, c.beta,
                  c.train_error_before_pct, c.train_error_after_pct);
    std::printf("\n");
  }

  std::printf(
      "Shape check: a naive fixed rule (OR/AND) makes the error depend\n"
      "violently on the row order; homogenization plus the dynamic\n"
      "threshold restores accuracy to the quantization-only level.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
