// google-benchmark micro kernels: the hot loops of the simulator.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/bitpack.hpp"
#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "quant/bitpack.hpp"
#include "quant/qnet.hpp"
#include "rram/crossbar.hpp"
#include "workloads/networks.hpp"

namespace {

using namespace sei;

void BM_Gemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
}
BENCHMARK(BM_Gemm)->Args({64, 300, 64})->Args({576, 25, 12});

void BM_ConvForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2D conv(5, 12, 64, rng);
  nn::Tensor in({1, 12, 12, 12});
  for (float& v : in.flat()) v = static_cast<float>(rng.uniform(0, 1));
  for (auto _ : state) {
    nn::Tensor out = conv.forward(in, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_CrossbarMvm(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = static_cast<int>(state.range(1));
  Rng rng(3);
  rram::Crossbar xb(rows, cols, rram::DeviceConfig{}, rng);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      xb.program(r, c, static_cast<int>(rng.below(16)));
  std::vector<double> in(static_cast<std::size_t>(rows));
  for (auto& v : in) v = rng.uniform();
  std::vector<double> out(static_cast<std::size_t>(cols));
  Rng read_rng(4);
  for (auto _ : state) {
    xb.mvm(in, out, read_rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(rows) *
                          cols);
}
BENCHMARK(BM_CrossbarMvm)->Args({400, 64})->Args({512, 512});

void BM_CrossbarSelected(benchmark::State& state) {
  const int rows = 400, cols = 64;
  Rng rng(5);
  rram::Crossbar xb(rows, cols, rram::DeviceConfig{}, rng);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      xb.program(r, c, static_cast<int>(rng.below(16)));
  std::vector<std::uint8_t> select(rows);
  for (auto& s : select) s = rng.bernoulli(0.15) ? 1 : 0;  // sparse inputs
  std::vector<double> coeff(rows, 16.0);
  std::vector<double> out(cols);
  Rng read_rng(6);
  for (auto _ : state) {
    xb.mvm_selected(select, coeff, out, read_rng);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CrossbarSelected);

void BM_BinaryStageEval(benchmark::State& state) {
  // Network 1 conv2-shaped binary stage evaluation — the simulator's
  // dominant inner loop during Table 4/5 accuracy runs.
  auto topo = workloads::network1().topo;
  auto geoms = quant::resolve_geometry(topo);
  quant::QLayer l;
  l.geom = geoms[1];
  l.weight = nn::Tensor({l.geom.rows, l.geom.cols});
  l.bias = nn::Tensor({l.geom.cols});
  Rng rng(7);
  for (float& v : l.weight.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  quant::BitMap in(static_cast<std::size_t>(l.geom.in_h) * l.geom.in_w *
                   l.geom.in_ch);
  for (auto& b : in) b = rng.bernoulli(0.15) ? 1 : 0;
  std::vector<float> out;
  for (auto _ : state) {
    quant::eval_stage_binary_input(l, in, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BinaryStageEval);

// --- core/bitpack kernels --------------------------------------------------

void BM_PackBits(benchmark::State& state) {
  Rng rng(9);
  quant::BitMap in(4096);
  for (auto& b : in) b = rng.bernoulli(0.15) ? 1 : 0;
  quant::PackedBits out;
  for (auto _ : state) {
    quant::pack_bits(in, out);
    benchmark::DoNotOptimize(out.words.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(in.size()));
}
BENCHMARK(BM_PackBits);

void BM_UnpackBits(benchmark::State& state) {
  Rng rng(10);
  quant::BitMap src(4096);
  for (auto& b : src) b = rng.bernoulli(0.15) ? 1 : 0;
  const quant::PackedBits in = quant::pack_bits(src);
  quant::BitMap out;
  for (auto _ : state) {
    quant::unpack_bits(in, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(src.size()));
}
BENCHMARK(BM_UnpackBits);

// Network-1 conv2 block shape: 300 rows, 64 columns, 3 crossbar blocks.
core::PackedStage make_bench_stage(int rows, int cols, int k,
                                   std::vector<float>& eff,
                                   std::vector<int>& row_to_block) {
  Rng rng(11);
  eff.resize(static_cast<std::size_t>(rows) * cols);
  for (auto& v : eff)
    v = static_cast<float>(static_cast<int>(rng.below(15)) - 7);
  row_to_block.resize(rows);
  for (int r = 0; r < rows; ++r) row_to_block[r] = r * k / rows;
  return core::build_packed_stage(eff, rows, cols, row_to_block, k, 8);
}

// AND+popcount bit-plane accumulation vs the byte-path scalar loop it
// replaces (`sums[c] += eff[r*cols+c]` over active rows). Items = one
// (rows × cols) position evaluation.
void BM_AccumulateScalar(benchmark::State& state) {
  const int rows = 300, cols = 64, k = 3;
  std::vector<float> eff;
  std::vector<int> row_to_block;
  (void)make_bench_stage(rows, cols, k, eff, row_to_block);
  Rng rng(12);
  std::vector<std::uint8_t> active(rows);
  for (auto& a : active) a = rng.bernoulli(0.15) ? 1 : 0;
  std::vector<double> sums(static_cast<std::size_t>(k) * cols);
  std::vector<int> n_active(k);
  for (auto _ : state) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(n_active.begin(), n_active.end(), 0);
    for (int r = 0; r < rows; ++r) {
      if (!active[r]) continue;
      const int b = row_to_block[r];
      ++n_active[b];
      double* dst = sums.data() + static_cast<std::size_t>(b) * cols;
      const float* w = eff.data() + static_cast<std::size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) dst[c] += w[c];
    }
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccumulateScalar);

void BM_AccumulatePacked(benchmark::State& state) {
  const int rows = 300, cols = 64, k = 3;
  std::vector<float> eff;
  std::vector<int> row_to_block;
  const core::PackedStage ps = make_bench_stage(rows, cols, k, eff,
                                                row_to_block);
  if (!ps.valid) {
    state.SkipWithError("packed stage invalid");
    return;
  }
  Rng rng(12);
  std::vector<std::uint64_t> window(ps.words, 0);
  for (int r = 0; r < rows; ++r)
    if (rng.bernoulli(0.15)) window[r >> 6] |= std::uint64_t{1} << (r & 63);
  std::vector<double> sums(static_cast<std::size_t>(k) * cols);
  std::vector<int> n_active(k);
  for (auto _ : state) {
    core::accumulate_position(ps, cols, k, window.data(), sums.data(),
                              n_active.data());
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccumulatePacked);

void BM_AccumulateRows(benchmark::State& state) {
  const int rows = 300, cols = 64, k = 3;
  std::vector<float> eff;
  std::vector<int> row_to_block;
  const core::PackedStage ps = make_bench_stage(rows, cols, k, eff,
                                                row_to_block);
  if (!ps.valid || !ps.rows_ok) {
    state.SkipWithError("row-gather path unavailable");
    return;
  }
  Rng rng(12);
  std::vector<std::uint64_t> window(ps.words, 0);
  for (int r = 0; r < rows; ++r)
    if (rng.bernoulli(0.15)) window[r >> 6] |= std::uint64_t{1} << (r & 63);
  std::vector<double> sums(static_cast<std::size_t>(k) * cols);
  std::vector<int> n_active(k);
  for (auto _ : state) {
    core::accumulate_position_rows(ps, cols, k, window.data(), sums.data(),
                                   n_active.data());
    benchmark::DoNotOptimize(sums.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AccumulateRows);

// 2×2 OR-pool: byte map vs packed words. Network-1 conv1 output shape.
void BM_OrPoolBytes(benchmark::State& state) {
  const int h = 24, w = 24, c = 12;
  Rng rng(13);
  quant::BitMap in(static_cast<std::size_t>(h) * w * c);
  for (auto& b : in) b = rng.bernoulli(0.3) ? 1 : 0;
  quant::BitMap out;
  for (auto _ : state) {
    core::or_pool_bytes(in, h, w, c, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(in.size()));
}
BENCHMARK(BM_OrPoolBytes);

void BM_OrPoolPacked(benchmark::State& state) {
  const int h = 24, w = 24, c = 12;
  Rng rng(13);
  quant::BitMap bytes(static_cast<std::size_t>(h) * w * c);
  for (auto& b : bytes) b = rng.bernoulli(0.3) ? 1 : 0;
  const quant::PackedBits in = quant::pack_bits(bytes);
  quant::PackedBits out;
  for (auto _ : state) {
    core::or_pool_packed(in, h, w, c, out);
    benchmark::DoNotOptimize(out.words.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(bytes.size()));
}
BENCHMARK(BM_OrPoolPacked);

// --- plan dispatch ---------------------------------------------------------

/// Tiny untrained FC stack with integral weights: per-stage evaluation is a
/// few hundred nanoseconds, so the compiled-vs-interpreted delta below
/// isolates pure dispatch cost (engine re-derivation, kernel-condition
/// checks, convert guessing) — the work compile_plan hoists out of the
/// request loop. Every stage takes the packed engines.
quant::QNetwork make_bench_qnet() {
  quant::QNetwork qnet;
  qnet.name = "bench_plan";
  quant::Topology topo;
  topo.name = "bench_plan";
  topo.input_size = 8;
  topo.stages = {{quant::StageSpec::Kind::Fc, 0, 16, false},
                 {quant::StageSpec::Kind::Fc, 0, 16, false},
                 {quant::StageSpec::Kind::Fc, 0, 10, false}};
  auto geoms = quant::resolve_geometry(topo);
  Rng rng(11);
  for (std::size_t s = 0; s < geoms.size(); ++s) {
    quant::QLayer l;
    l.geom = geoms[s];
    l.weight = nn::Tensor({l.geom.rows, l.geom.cols});
    l.bias = nn::Tensor({l.geom.cols});
    for (float& v : l.weight.flat())
      v = static_cast<float>(static_cast<int>(rng.below(9)) - 4);
    l.threshold = 2.0f;
    l.binarize = s + 1 < geoms.size();
    qnet.layers.push_back(std::move(l));
  }
  return qnet;
}

void bench_predict(benchmark::State& state, bool plan_mode) {
  static quant::QNetwork qnet = make_bench_qnet();
  core::SeiNetwork hw(qnet, core::HardwareConfig{});
  hw.set_plan_mode(plan_mode);
  Rng rng(12);
  std::vector<float> img(64);
  for (float& v : img) v = static_cast<float>(rng.uniform(0, 1));
  core::EvalContext ctx;
  hw.prepare(ctx);
  long long i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw.predict(img, ctx, i++));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PredictInterpreted(benchmark::State& state) {
  bench_predict(state, false);
}
BENCHMARK(BM_PredictInterpreted);

void BM_PredictCompiled(benchmark::State& state) { bench_predict(state, true); }
BENCHMARK(BM_PredictCompiled);

void BM_SyntheticDigitRender(benchmark::State& state) {
  data::SynthConfig cfg;
  Rng rng(8);
  std::vector<float> img(64);
  int digit = 0;
  for (auto _ : state) {
    data::render_digit(digit, cfg, rng, img.data());
    digit = (digit + 1) % 10;
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_SyntheticDigitRender);

}  // namespace
