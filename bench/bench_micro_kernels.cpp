// google-benchmark micro kernels: the hot loops of the simulator.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "quant/qnet.hpp"
#include "rram/crossbar.hpp"
#include "workloads/networks.hpp"

namespace {

using namespace sei;

void BM_Gemm(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * m * k * n);
}
BENCHMARK(BM_Gemm)->Args({64, 300, 64})->Args({576, 25, 12});

void BM_ConvForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2D conv(5, 12, 64, rng);
  nn::Tensor in({1, 12, 12, 12});
  for (float& v : in.flat()) v = static_cast<float>(rng.uniform(0, 1));
  for (auto _ : state) {
    nn::Tensor out = conv.forward(in, false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_CrossbarMvm(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int cols = static_cast<int>(state.range(1));
  Rng rng(3);
  rram::Crossbar xb(rows, cols, rram::DeviceConfig{}, rng);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      xb.program(r, c, static_cast<int>(rng.below(16)));
  std::vector<double> in(static_cast<std::size_t>(rows));
  for (auto& v : in) v = rng.uniform();
  std::vector<double> out(static_cast<std::size_t>(cols));
  Rng read_rng(4);
  for (auto _ : state) {
    xb.mvm(in, out, read_rng);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(rows) *
                          cols);
}
BENCHMARK(BM_CrossbarMvm)->Args({400, 64})->Args({512, 512});

void BM_CrossbarSelected(benchmark::State& state) {
  const int rows = 400, cols = 64;
  Rng rng(5);
  rram::Crossbar xb(rows, cols, rram::DeviceConfig{}, rng);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      xb.program(r, c, static_cast<int>(rng.below(16)));
  std::vector<std::uint8_t> select(rows);
  for (auto& s : select) s = rng.bernoulli(0.15) ? 1 : 0;  // sparse inputs
  std::vector<double> coeff(rows, 16.0);
  std::vector<double> out(cols);
  Rng read_rng(6);
  for (auto _ : state) {
    xb.mvm_selected(select, coeff, out, read_rng);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CrossbarSelected);

void BM_BinaryStageEval(benchmark::State& state) {
  // Network 1 conv2-shaped binary stage evaluation — the simulator's
  // dominant inner loop during Table 4/5 accuracy runs.
  auto topo = workloads::network1().topo;
  auto geoms = quant::resolve_geometry(topo);
  quant::QLayer l;
  l.geom = geoms[1];
  l.weight = nn::Tensor({l.geom.rows, l.geom.cols});
  l.bias = nn::Tensor({l.geom.cols});
  Rng rng(7);
  for (float& v : l.weight.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  quant::BitMap in(static_cast<std::size_t>(l.geom.in_h) * l.geom.in_w *
                   l.geom.in_ch);
  for (auto& b : in) b = rng.bernoulli(0.15) ? 1 : 0;
  std::vector<float> out;
  for (auto _ : state) {
    quant::eval_stage_binary_input(l, in, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_BinaryStageEval);

void BM_SyntheticDigitRender(benchmark::State& state) {
  data::SynthConfig cfg;
  Rng rng(8);
  std::vector<float> img(784);
  int digit = 0;
  for (auto _ : state) {
    data::render_digit(digit, cfg, rng, img.data());
    digit = (digit + 1) % 10;
    benchmark::DoNotOptimize(img.data());
  }
}
BENCHMARK(BM_SyntheticDigitRender);

}  // namespace
