// Reproduces Fig. 1: power and area consumption breakdown (DAC / ADC /
// RRAM / Other) per layer for the 4-layer Network 1 at 8-bit data precision
// on the DAC+ADC baseline structure with 512×512 crossbars.
//
// Paper's claim: ADCs and DACs cost more than 98% of both area and power.
//
// Flags: --network (default network1), --max-crossbar (default 512).
#include <cstdio>

#include "arch/cost_model.hpp"
#include "arch/report.hpp"
#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "workloads/networks.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network1");
  const int max_size = cli.get_int("max-crossbar", 512);
  const std::string csv_path =
      cli.get("csv", "", "CSV path prefix (writes <path>.power.csv/.area.csv)");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Fig. 1: power/area breakdown of the DAC+ADC baseline"))
    return 0;

  const workloads::Workload wl = workloads::workload_by_name(net_name);
  core::HardwareConfig cfg;
  cfg.limits.max_rows = max_size;
  cfg.limits.max_cols = max_size;

  const arch::NetworkCost cost =
      arch::estimate_cost(wl.topo, cfg, core::StructureKind::kDacAdc8);
  const auto rows = arch::fig1_rows(cost, {"Conv 1", "Conv 2", "FC"});

  std::printf(
      "Fig. 1 reproduction — %s, 8-bit data, DAC+ADC baseline, %dx%d "
      "crossbars\n\n",
      net_name.c_str(), max_size, max_size);

  TextTable power("Power breakdown (percent of layer total)");
  power.header({"Layer", "DAC", "ADC", "RRAM", "Other"});
  TextTable area("Area breakdown (percent of layer total)");
  area.header({"Layer", "DAC", "ADC", "RRAM", "Other"});
  for (const auto& r : rows) {
    power.row({r.label, TextTable::pct(r.power.dac_pct),
               TextTable::pct(r.power.adc_pct),
               TextTable::pct(r.power.rram_pct),
               TextTable::pct(r.power.other_pct)});
    area.row({r.label, TextTable::pct(r.area.dac_pct),
              TextTable::pct(r.area.adc_pct),
              TextTable::pct(r.area.rram_pct),
              TextTable::pct(r.area.other_pct)});
  }
  if (!csv_path.empty()) {
    power.write_csv_if(csv_path + ".power.csv");
    area.write_csv_if(csv_path + ".area.csv");
  }
  std::printf("%s\n%s\n", power.str().c_str(), area.str().c_str());

  const auto total_p = rows.back().power;
  const auto total_a = rows.back().area;
  std::printf("ADC+DAC share of total power: %.2f%%  (paper: > 98%%)\n",
              total_p.dac_pct + total_p.adc_pct);
  std::printf("ADC+DAC share of total area:  %.2f%%  (paper: > 98%%)\n",
              total_a.dac_pct + total_a.adc_pct);
  std::printf("Total energy: %.2f uJ/picture, total area: %.3f mm^2\n",
              cost.energy_uj_per_picture(), cost.area_mm2());
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
