// Chaos harness driver: compound fault soak + crash-point matrix, with CI
// gates (schema sei-chaos-v1).
//
// Two phases, both on by default (--mode soak|matrix|both):
//
//   soak    — run_chaos_scenario: a sharded fleet under scripted storms,
//             probabilistic IO faults and short writes on every durable
//             writer, thread-pool stragglers, admission bursts and
//             deadline pressure, all seeded; afterwards the invariant
//             sweep (ticket conservation, billing conservation, plan
//             coherence, arena re-bind safety) must come back clean.
//   matrix  — run_crash_matrix: kill the fleet at every write offset of
//             the checkpoint commit sequence (--stride 1 = 100% coverage)
//             under each thread-pool width in --threads-list, and require
//             bit-identical resume + replay with bills within 1e-6 pJ.
//
// Gates: --max-violations (default 0), --min-availability (soak, %),
// --require-full-coverage (matrix must hit every offset). The JSON is
// always written; the exit code says pass/fail. docs/chaos.md documents
// the protocol.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "arch/live_energy.hpp"
#include "chaos/crash_matrix.hpp"
#include "chaos/invariants.hpp"
#include "chaos/scenario.hpp"
#include "common/cli.hpp"
#include "common/io.hpp"
#include "core/adc_network.hpp"
#include "exec/thread_pool.hpp"
#include "reliability/repair.hpp"
#include "serve/fleet.hpp"
#include "telemetry/flags.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {

std::vector<int> parse_int_list(const std::string& spec) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    if (!item.empty()) out.push_back(std::stoi(item));
    pos = comma + 1;
  }
  return out;
}

void write_violations(JsonWriter& j,
                      const std::vector<chaos::InvariantViolation>& vs) {
  j.key("violations");
  j.begin_array();
  for (const chaos::InvariantViolation& v : vs) {
    j.begin_object();
    j.kv("invariant", v.invariant);
    j.kv("detail", v.detail);
    j.end_object();
  }
  j.end_array();
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const std::string mode = cli.get("mode", "both", "soak | matrix | both");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      cli.get_int("seed", 20260808, "chaos injection seed"));
  // Soak knobs.
  const int requests =
      cli.get_int("requests", 10000, "soak: requests to submit");
  const int nshards = cli.get_int("shards", 3, "soak: SEI replica count");
  const std::string tenant_spec =
      cli.get("tenants", "A:2,B:1", "tenant weights, name:weight[,...]");
  const int window = cli.get_int("window", 16, "soak: in-flight window");
  const int burst_every =
      cli.get_int("burst-every", 97, "soak: submissions per burst (0 = off)");
  const int burst_size = cli.get_int("burst-size", 24, "soak: burst length");
  const double tight_frac = cli.get_double(
      "tight-deadline-frac", 0.02, "soak: fraction with a tight deadline");
  const double io_fail = cli.get_double(
      "io-fail-prob", 0.10, "soak: P(injected IO failure) per operation");
  const double io_short = cli.get_double(
      "io-short-prob", 0.05, "soak: P(injected short write) per operation");
  const int stall_every = cli.get_int(
      "stall-every", 17, "soak: thread-pool chunks per stall (0 = off)");
  const int skip_bound = cli.get_int(
      "skip-bound", -1,
      "soak: word-skip bound on every SEI stage (-1 = dense); when >= 0 the "
      "billing-envelope invariant is checked too (docs/sparsity.md)");
  const int ckpt_every = cli.get_int(
      "checkpoint-every", 200, "soak: dispatches per checkpoint set");
  const int storm_at = cli.get_int(
      "storm-at", 2000, "soak: storm strike at this dispatch (0 = off)");
  const int storm_duration =
      cli.get_int("storm-duration", 4000, "soak: dispatches the storm holds");
  // Matrix knobs.
  const int cut1 = cli.get_int("cut1", 40, "matrix: first commit point");
  const int cut2 = cli.get_int("cut2", 60, "matrix: crashed commit point");
  const int total = cli.get_int("total", 80, "matrix: full stream length");
  const int stride =
      cli.get_int("stride", 1, "matrix: crash-offset stride (1 = full)");
  const std::string threads_list =
      cli.get("threads-list", "1,2,8", "matrix: thread-pool widths");
  const int matrix_storm_at = cli.get_int(
      "matrix-storm-at", 50, "matrix: storm strike between the cuts (0=off)");
  // Gates.
  const int max_violations =
      cli.get_int("max-violations", 0, "gate: fail above this many");
  const double min_availability = cli.get_double(
      "min-availability", 0.0, "gate: soak availability % floor (0 = off)");
  const bool require_full_coverage =
      cli.get_int("require-full-coverage", 0,
                  "gate: matrix must cover 100% of write offsets") != 0;
  const std::string work_dir =
      cli.get("work-dir", "bench_chaos_work", "checkpoint scratch directory");
  const std::string json_path = cli.get("json", "BENCH_chaos.json");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("chaos harness: compound fault soak + crash-point matrix"))
    return 0;
  const bool run_soak = mode == "soak" || mode == "both";
  const bool run_matrix = mode == "matrix" || mode == "both";
  SEI_CHECK_MSG(run_soak || run_matrix, "unknown --mode " << mode);

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  const auto fleet_config = [&](const std::string& dir, int every) {
    serve::FleetConfig fc;
    fc.tenants = serve::parse_tenant_specs(tenant_spec);
    for (serve::TenantConfig& t : fc.tenants) t.queue_capacity = 1024;
    fc.sentinel.probe_every = 16;
    fc.breaker.retry_backoff_ms = 1;
    fc.calibration.max_images = 200;
    fc.checkpoint_dir = dir;
    fc.checkpoint_every = every;
    return fc;
  };
  const auto make_nets = [&] {
    std::vector<std::unique_ptr<core::SeiNetwork>> nets;
    for (int k = 0; k < nshards; ++k) {
      core::HardwareConfig hw;
      hw.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
      hw.spare_row_fraction = 0.1;
      nets.push_back(std::make_unique<core::SeiNetwork>(
          art.qnet, hw,
          reliability::make_repair_hook(reliability::RepairConfig{},
                                        nullptr)));
      if (skip_bound >= 0)
        nets.back()->set_skip_bounds(std::vector<int>(
            static_cast<std::size_t>(nets.back()->stage_count()), skip_bound));
    }
    return nets;
  };

  chaos::ChaosScenarioReport soak;
  if (run_soak) {
    auto nets = make_nets();
    std::vector<core::SeiNetwork*> ptrs;
    for (auto& n : nets) ptrs.push_back(n.get());
    const core::AdcNetwork fallback(art.qnet, core::AdcConfig{}, data.train);
    const std::string dir = work_dir + "/soak_ckpt";
    std::filesystem::remove_all(dir);
    serve::FleetRuntime fleet(ptrs, art.qnet, data.test, data.train,
                              fleet_config(dir, ckpt_every), &fallback);
    if (storm_at > 0) {
      serve::StormSchedule storm;
      storm.events.push_back({static_cast<std::uint64_t>(storm_at), 0,
                              {0, -1, 0.10, 1.0},
                              static_cast<std::uint64_t>(storm_duration)});
      fleet.set_storm(storm);
    }
    chaos::ChaosScenarioConfig cc;
    cc.seed = seed;
    cc.requests = requests;
    cc.window = window;
    cc.burst_every = burst_every;
    cc.burst_size = burst_size;
    cc.tight_deadline_frac = tight_frac;
    cc.io_fail_prob = io_fail;
    cc.io_short_write_prob = io_short;
    cc.stall_every = stall_every;
    if (skip_bound >= 0) {
      // Sparse bills vary per image; the envelope invariant brackets each
      // tenant's metered delta with the structural [floor, ceiling] prices.
      const core::HardwareConfig& hw0 = ptrs[0]->config();
      const telemetry::EnergyMeter sei_m =
          arch::make_energy_meter(art.qnet, hw0, core::StructureKind::kSei);
      const telemetry::EnergyMeter adc_m = arch::make_energy_meter(
          art.qnet, hw0, core::StructureKind::kBinInputAdc);
      cc.check_envelope = true;
      cc.envelope.sei_min_image_j = sei_m.network_floor_pj().total() * 1e-12;
      cc.envelope.sei_max_image_j = sei_m.network_pj().total() * 1e-12;
      cc.envelope.adc_image_j = adc_m.network_pj().total() * 1e-12;
    }
    std::printf("chaos soak: %d requests, %d shards, tenants %s, seed %llu\n",
                requests, nshards, tenant_spec.c_str(),
                static_cast<unsigned long long>(seed));
    soak = chaos::run_chaos_scenario(fleet, ptrs, data.test, cc);
    std::filesystem::remove_all(dir);
    std::printf(
        "soak: ok %llu  degraded %llu  shed %llu  deadline %llu  quota %llu  "
        "queue %llu  other %llu  availability %.2f%%\n"
        "soak: io faults injected %llu  stalls %llu  violations %zu\n",
        static_cast<unsigned long long>(soak.ok),
        static_cast<unsigned long long>(soak.degraded),
        static_cast<unsigned long long>(soak.shed),
        static_cast<unsigned long long>(soak.deadline_expired),
        static_cast<unsigned long long>(soak.quota_rejected),
        static_cast<unsigned long long>(soak.queue_full),
        static_cast<unsigned long long>(soak.other_rejected),
        100.0 * soak.availability,
        static_cast<unsigned long long>(soak.io_faults_injected),
        static_cast<unsigned long long>(soak.stalls_injected),
        soak.violations.size());
  }

  chaos::CrashMatrixReport matrix;
  if (run_matrix) {
    std::vector<std::unique_ptr<core::SeiNetwork>> nets;
    const chaos::FleetFactory factory =
        [&](const std::string& dir) -> std::unique_ptr<serve::FleetRuntime> {
      nets = make_nets();
      std::vector<core::SeiNetwork*> ptrs;
      for (auto& n : nets) ptrs.push_back(n.get());
      auto fleet = std::make_unique<serve::FleetRuntime>(
          ptrs, art.qnet, data.test, data.train, fleet_config(dir, 0));
      if (matrix_storm_at > 0) {
        serve::StormSchedule storm;
        storm.events.push_back({static_cast<std::uint64_t>(matrix_storm_at), 0,
                                {0, -1, 0.10, 1.0}, 10000});
        fleet->set_storm(storm);
      }
      return fleet;
    };
    chaos::CrashMatrixConfig mc;
    mc.dir = work_dir + "/matrix_ckpt";
    mc.cut1 = cut1;
    mc.cut2 = cut2;
    mc.total = total;
    mc.stride = stride;
    mc.threads = parse_int_list(threads_list);
    std::printf("crash matrix: cuts %d/%d/%d, stride %d, threads %s\n", cut1,
                cut2, total, stride, threads_list.c_str());
    matrix = chaos::run_crash_matrix(factory, data.test, mc);
    std::printf(
        "matrix: %d commit steps, %d legs, coverage %.1f%%  "
        "(resumed old %d / new %d)  violations %zu\n",
        matrix.commit_steps, matrix.steps_tested, matrix.coverage_pct,
        matrix.resumed_from_old, matrix.resumed_from_new,
        matrix.violations.size());
  }
  std::filesystem::remove_all(work_dir);

  const std::size_t violations_total =
      soak.violations.size() + matrix.violations.size();
  for (const chaos::InvariantViolation& v : soak.violations)
    std::fprintf(stderr, "soak violation [%s] %s\n", v.invariant.c_str(),
                 v.detail.c_str());
  for (const chaos::InvariantViolation& v : matrix.violations)
    std::fprintf(stderr, "matrix violation [%s] %s\n", v.invariant.c_str(),
                 v.detail.c_str());

  JsonWriter j(json_path);
  j.begin_object();
  j.kv("schema", "sei-chaos-v1");
  j.kv("network", net_name);
  j.kv("mode", mode);
  j.kv("seed", static_cast<long long>(seed));
  j.kv("violations_total", static_cast<long long>(violations_total));
  if (run_soak) {
    j.key("soak");
    j.begin_object();
    j.kv("requests", static_cast<long long>(requests));
    j.kv("shards", static_cast<long long>(nshards));
    j.kv("tenant_spec", tenant_spec);
    j.kv("submitted", static_cast<long long>(soak.submitted));
    j.kv("dispatched", static_cast<long long>(soak.dispatched));
    j.kv("ok", static_cast<long long>(soak.ok));
    j.kv("degraded", static_cast<long long>(soak.degraded));
    j.kv("shed", static_cast<long long>(soak.shed));
    j.kv("deadline_expired", static_cast<long long>(soak.deadline_expired));
    j.kv("quota_rejected", static_cast<long long>(soak.quota_rejected));
    j.kv("queue_full", static_cast<long long>(soak.queue_full));
    j.kv("other_rejected", static_cast<long long>(soak.other_rejected));
    j.kv("io_faults_injected",
         static_cast<long long>(soak.io_faults_injected));
    j.kv("stalls_injected", static_cast<long long>(soak.stalls_injected));
    j.kv("availability_pct", 100.0 * soak.availability);
    write_violations(j, soak.violations);
    j.end_object();
  }
  if (run_matrix) {
    j.key("matrix");
    j.begin_object();
    j.kv("cut1", static_cast<long long>(cut1));
    j.kv("cut2", static_cast<long long>(cut2));
    j.kv("total", static_cast<long long>(total));
    j.kv("stride", static_cast<long long>(stride));
    j.kv("threads_list", threads_list);
    j.kv("commit_steps", static_cast<long long>(matrix.commit_steps));
    j.kv("steps_tested", static_cast<long long>(matrix.steps_tested));
    j.kv("resumed_from_old", static_cast<long long>(matrix.resumed_from_old));
    j.kv("resumed_from_new", static_cast<long long>(matrix.resumed_from_new));
    j.kv("coverage_pct", matrix.coverage_pct);
    write_violations(j, matrix.violations);
    j.end_object();
  }
  j.end_object();
  j.commit();
  std::printf("wrote %s\n", json_path.c_str());
  telemetry::telemetry_flush(tel);

  bool gate_failed = false;
  if (violations_total > static_cast<std::size_t>(max_violations)) {
    std::fprintf(stderr, "GATE FAILED: %zu invariant violations > %d\n",
                 violations_total, max_violations);
    gate_failed = true;
  }
  if (run_soak && min_availability > 0.0 &&
      100.0 * soak.availability < min_availability) {
    std::fprintf(stderr, "GATE FAILED: soak availability %.2f%% < %.2f%%\n",
                 100.0 * soak.availability, min_availability);
    gate_failed = true;
  }
  if (run_matrix && require_full_coverage && matrix.coverage_pct < 100.0) {
    std::fprintf(stderr,
                 "GATE FAILED: crash matrix covered %.1f%% of write offsets "
                 "(stride %d leaves gaps; run --stride 1)\n",
                 matrix.coverage_pct, stride);
    gate_failed = true;
  }
  return gate_failed ? 1 : 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
