// Device/design-space ablations around the SEI structure:
//   (a) sign mode — bipolar ±port vs the §4.2 unipolar dynamic-threshold
//       mapping (half the cells, but the large w0 constant is exposed to
//       programming variation);
//   (b) device precision (2/4/6-bit, the paper cites 4–6 bit as realistic);
//   (c) programming variation sigma;
//   (d) stuck-cell fault injection.
//
// Flags: --network network2, --images 1000.
#include <cstdio>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name =
      cli.get("network", "network2", "workload to map");
  const int images = cli.get_int("images", 1000, "test images per point");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("SEI device/design-space ablations")) return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});
  const double quant_err = art.quant_error(data.test);
  std::printf("SEI ablations — %s (software binary error %.2f%%)\n\n",
              net_name.c_str(), quant_err);

  auto sei_error = [&](const core::HardwareConfig& cfg) {
    core::SeiNetwork net(art.qnet, cfg);
    return net.error_rate(data.test, images);
  };

  {
    TextTable t("(a) Sign mode and (b) device precision");
    t.header({"Sign mode", "Device bits", "Cells/weight", "Error"});
    for (auto mode : {core::SignMode::kBipolarPort,
                      core::SignMode::kUnipolarDynThresh}) {
      for (int bits : {2, 4, 6}) {
        core::HardwareConfig cfg;
        cfg.sign_mode = mode;
        cfg.device.bits = bits;
        t.row({mode == core::SignMode::kBipolarPort ? "bipolar ±port"
                                                    : "unipolar dyn-thresh",
               std::to_string(bits), std::to_string(cfg.cells_per_weight()),
               TextTable::pct(sei_error(cfg))});
      }
    }
    std::printf("%s\n", t.str().c_str());
  }

  {
    // Device bits only change the slicing (ideal reconstruction is exact);
    // the accuracy knob is the weight precision itself.
    TextTable t("(b2) Weight precision on 4-bit devices");
    t.header({"Weight bits", "Cells/weight", "Error"});
    for (int wb : {3, 4, 6, 8}) {
      core::HardwareConfig cfg;
      cfg.weight_bits = wb;
      t.row({std::to_string(wb), std::to_string(cfg.cells_per_weight()),
             TextTable::pct(sei_error(cfg))});
    }
    std::printf("%s\n", t.str().c_str());
  }

  {
    TextTable t("(c) Programming variation (lognormal sigma)");
    t.header({"Sigma", "Bipolar error", "Unipolar error", "Misprogrammed"});
    for (double sigma : {0.0, 0.02, 0.05, 0.1, 0.2}) {
      core::HardwareConfig cfg;
      cfg.device.program_sigma = sigma;
      core::SeiNetwork bi(art.qnet, cfg);
      cfg.sign_mode = core::SignMode::kUnipolarDynThresh;
      core::SeiNetwork uni(art.qnet, cfg);
      double mis = 0;
      for (int s = 0; s < bi.stage_count(); ++s)
        mis += bi.layer(s).misprogrammed_fraction;
      t.row({TextTable::num(sigma, 2),
             TextTable::pct(bi.error_rate(data.test, images)),
             TextTable::pct(uni.error_rate(data.test, images)),
             TextTable::pct(100 * mis / bi.stage_count(), 1)});
    }
    std::printf("%s\n", t.str().c_str());
  }

  {
    // Write-verify tuning [13] rescues open-loop programming variation.
    TextTable t("(c2) Write-verify tuning at sigma = 0.2");
    t.header({"Max attempts", "Bipolar error", "Unipolar error"});
    for (int attempts : {1, 2, 4, 8}) {
      core::HardwareConfig cfg;
      cfg.device.program_sigma = 0.2;
      cfg.device.max_program_attempts = attempts;
      core::SeiNetwork bi(art.qnet, cfg);
      cfg.sign_mode = core::SignMode::kUnipolarDynThresh;
      core::SeiNetwork uni(art.qnet, cfg);
      t.row({std::to_string(attempts),
             TextTable::pct(bi.error_rate(data.test, images)),
             TextTable::pct(uni.error_rate(data.test, images))});
    }
    std::printf("%s\n", t.str().c_str());
  }

  {
    TextTable t("(d) Stuck-cell fault injection");
    t.header({"Stuck fraction", "Error"});
    for (double frac : {0.0, 0.001, 0.005, 0.02, 0.05}) {
      core::HardwareConfig cfg;
      cfg.device.stuck_fraction = frac;
      t.row({TextTable::pct(100 * frac, 1), TextTable::pct(sei_error(cfg))});
    }
    std::printf("%s\n", t.str().c_str());
  }

  {
    TextTable t("(e) First-order IR-drop (fractional loss at 512 cells)");
    t.header({"Alpha", "Error"});
    for (double alpha : {0.0, 0.1, 0.2, 0.4}) {
      core::HardwareConfig cfg;
      cfg.device.ir_drop_alpha = alpha;
      t.row({TextTable::num(alpha, 2), TextTable::pct(sei_error(cfg))});
    }
    std::printf("%s\n", t.str().c_str());
  }

  {
    TextTable t("(f) Sense-amp read noise (relative sigma per read)");
    t.header({"Sigma", "Error"});
    for (double sigma : {0.0, 0.01, 0.03, 0.08}) {
      core::HardwareConfig cfg;
      cfg.device.read_noise_sigma = sigma;
      t.row({TextTable::num(sigma, 2), TextTable::pct(sei_error(cfg))});
    }
    std::printf("%s\n", t.str().c_str());
  }

  {
    TextTable t("(g) Static sense-amp offset mismatch (integer-weight LSBs)");
    t.header({"Offset sigma", "Error"});
    for (double sigma : {0.0, 1.0, 2.0, 5.0, 10.0}) {
      core::HardwareConfig cfg;
      cfg.sa_offset_sigma = sigma;
      t.row({TextTable::num(sigma, 1), TextTable::pct(sei_error(cfg))});
    }
    std::printf("%s\n", t.str().c_str());
  }

  std::printf(
      "Shape check: 4-bit devices match the software binary accuracy; the\n"
      "unipolar mapping halves the cells at equal ideal accuracy but is\n"
      "more sensitive to variation (the w0 constant is stored, not wired);\n"
      "moderate variation and sparse stuck cells degrade gracefully.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
