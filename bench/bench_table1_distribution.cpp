// Reproduces Table 1: distribution of normalized intermediate data of the
// Conv layers. The paper analyzes CaffeNet on ImageNet; that substrate is
// unavailable offline, so — as the paper itself notes that "all the
// networks have a similar data distribution with CaffeNet" — we analyze
// the Table 2 networks on the test set (see DESIGN.md §3).
//
// Paper's claim: the large majority of conv outputs (≈95–98% for CaffeNet)
// sit in the lowest bin [0, 1/16) of the normalized range; only ≲1% exceed
// 1/4. This long tail is what makes 1-bit quantization viable.
//
// Next to the static float-activation bins, the JSON also records each
// network's RUNTIME per-stage 9-bit input-word popcount histogram
// (sparsity::estimate_activity at all-zero bounds — a pure observation of
// the dense network): the paper's Table 1 groups inputs into 9-bit words
// and counts ones per word, and this is that exact distribution as the
// mapped SEI hardware sees it — the quantity the skip predicate
// (docs/sparsity.md) thresholds on.
//
// Flags: --images N (default all test images), --json PATH.
#include <cstdio>

#include "common/cli.hpp"
#include "common/io.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "core/sei_network.hpp"
#include "quant/distribution.hpp"
#include "sparsity/activity.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const int max_images = cli.get_int("images", -1);
  const std::string json_path = cli.get("json", "BENCH_table1.json");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Table 1: normalized intermediate-data distribution"))
    return 0;

  data::DataBundle data = workloads::load_default_data(true);
  nn::Tensor images = data.test.images;
  if (max_images > 0 && max_images < data.test.size())
    images = nn::Network::slice_batch(data.test.images, 0, max_images);

  std::printf("Table 1 reproduction — conv-layer activation distribution\n");
  std::printf("(paper analyzed CaffeNet layers 1-5; rows below are the\n");
  std::printf(" Table 2 networks' conv layers on %d test images)\n\n",
              images.dim(0));

  const int act_images = max_images > 0
                             ? std::min(max_images, data.test.size())
                             : data.test.size();

  JsonWriter j(json_path);
  j.begin_object();
  j.kv("schema", "sei-table1-v2");
  j.kv("images", static_cast<long long>(images.dim(0)));
  j.key("networks");
  j.begin_array();

  TextTable t;
  t.header({"Network / layer", "0~1/16", "1/16~1/8", "1/8~1/4", "1/4~1"});
  t.row({"CaffeNet all layers (paper)", "98.63%", "1.20%", "0.16%", "0.01%"});
  t.separator();
  TextTable wt("runtime 9-bit input-word popcount distribution (SEI "
               "stages, % of words)");
  wt.header({"Network / stage", "0", "1", "2", "3", "4", "5+"});
  for (const char* name : {"network1", "network2", "network3"}) {
    workloads::Artifacts art =
        workloads::prepare_workload(name, data, {});
    // Re-load the un-rescaled trained model for the distribution analysis
    // (prepare_workload's quantization step re-scales the weights).
    nn::Network net = workloads::load_or_train(art.wl, data, false);
    const quant::DistributionReport rep =
        quant::analyze_conv_distribution(net, images);
    j.begin_object();
    j.kv("network", name);
    j.key("static_bins");
    j.begin_array();
    for (const auto& l : rep.layers) {
      t.row({std::string(name) + " " + l.layer_name,
             TextTable::pct(100 * l.fractions[0]),
             TextTable::pct(100 * l.fractions[1]),
             TextTable::pct(100 * l.fractions[2]),
             TextTable::pct(100 * l.fractions[3])});
      j.begin_object();
      j.kv("layer", l.layer_name);
      j.key("fractions");
      j.begin_array();
      for (const double f : l.fractions) j.value(f);
      j.end_array();
      j.end_object();
    }
    t.row({std::string(name) + " all layers",
           TextTable::pct(100 * rep.all.fractions[0]),
           TextTable::pct(100 * rep.all.fractions[1]),
           TextTable::pct(100 * rep.all.fractions[2]),
           TextTable::pct(100 * rep.all.fractions[3])});
    t.separator();
    j.end_array();

    // Runtime twin: the mapped network's per-stage word-popcount
    // histogram, observed at all-zero bounds (bit-identical to dense).
    core::SeiNetwork hw(art.qnet, core::HardwareConfig{});
    hw.set_skip_bounds(
        std::vector<int>(static_cast<std::size_t>(hw.stage_count()), 0));
    const sparsity::ActivityEstimator est =
        sparsity::estimate_activity(hw, data.test, act_images);
    j.key("runtime_word_popcounts");
    j.begin_array();
    for (int s = 0; s < est.stage_count(); ++s) {
      const auto& c = est.stage(s);
      if (c.words == 0) continue;  // stage 0 / non-SEI: no word decisions
      j.begin_object();
      j.kv("stage", static_cast<long long>(s));
      j.kv("words", static_cast<long long>(c.words));
      j.key("hist");
      j.begin_array();
      for (int h = 0; h <= core::SeiNetwork::kWordRows; ++h)
        j.value(static_cast<long long>(c.hist[h]));
      j.end_array();
      j.end_object();
      const double total = static_cast<double>(c.words);
      std::int64_t tail = 0;
      for (int h = 5; h <= core::SeiNetwork::kWordRows; ++h)
        tail += c.hist[h];
      wt.row({std::string(name) + " stage " + std::to_string(s),
              TextTable::pct(100.0 * c.hist[0] / total),
              TextTable::pct(100.0 * c.hist[1] / total),
              TextTable::pct(100.0 * c.hist[2] / total),
              TextTable::pct(100.0 * c.hist[3] / total),
              TextTable::pct(100.0 * c.hist[4] / total),
              TextTable::pct(100.0 * tail / total)});
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  j.commit();
  std::printf("%s\n", t.str().c_str());
  std::printf("%s\n", wt.str().c_str());
  std::printf(
      "Shape check: the lowest bin dominates every layer and the top bin\n"
      "is a small minority — the long-tail property Algorithm 1 relies "
      "on. The runtime word histogram shows the same shape per 9-bit\n"
      "input word: the zero bin is what the sparsity skip predicate\n"
      "switches off (docs/sparsity.md). Wrote %s.\n",
      json_path.c_str());
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
