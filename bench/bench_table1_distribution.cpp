// Reproduces Table 1: distribution of normalized intermediate data of the
// Conv layers. The paper analyzes CaffeNet on ImageNet; that substrate is
// unavailable offline, so — as the paper itself notes that "all the
// networks have a similar data distribution with CaffeNet" — we analyze
// the Table 2 networks on the test set (see DESIGN.md §3).
//
// Paper's claim: the large majority of conv outputs (≈95–98% for CaffeNet)
// sit in the lowest bin [0, 1/16) of the normalized range; only ≲1% exceed
// 1/4. This long tail is what makes 1-bit quantization viable.
//
// Flags: --images N (default all test images).
#include <cstdio>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "quant/distribution.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const int max_images = cli.get_int("images", -1);
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Table 1: normalized intermediate-data distribution"))
    return 0;

  data::DataBundle data = workloads::load_default_data(true);
  nn::Tensor images = data.test.images;
  if (max_images > 0 && max_images < data.test.size())
    images = nn::Network::slice_batch(data.test.images, 0, max_images);

  std::printf("Table 1 reproduction — conv-layer activation distribution\n");
  std::printf("(paper analyzed CaffeNet layers 1-5; rows below are the\n");
  std::printf(" Table 2 networks' conv layers on %d test images)\n\n",
              images.dim(0));

  TextTable t;
  t.header({"Network / layer", "0~1/16", "1/16~1/8", "1/8~1/4", "1/4~1"});
  t.row({"CaffeNet all layers (paper)", "98.63%", "1.20%", "0.16%", "0.01%"});
  t.separator();
  for (const char* name : {"network1", "network2", "network3"}) {
    workloads::Artifacts art =
        workloads::prepare_workload(name, data, {});
    // Re-load the un-rescaled trained model for the distribution analysis
    // (prepare_workload's quantization step re-scales the weights).
    nn::Network net = workloads::load_or_train(art.wl, data, false);
    const quant::DistributionReport rep =
        quant::analyze_conv_distribution(net, images);
    for (const auto& l : rep.layers) {
      t.row({std::string(name) + " " + l.layer_name,
             TextTable::pct(100 * l.fractions[0]),
             TextTable::pct(100 * l.fractions[1]),
             TextTable::pct(100 * l.fractions[2]),
             TextTable::pct(100 * l.fractions[3])});
    }
    t.row({std::string(name) + " all layers",
           TextTable::pct(100 * rep.all.fractions[0]),
           TextTable::pct(100 * rep.all.fractions[1]),
           TextTable::pct(100 * rep.all.fractions[2]),
           TextTable::pct(100 * rep.all.fractions[3])});
    t.separator();
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Shape check: the lowest bin dominates every layer and the top bin\n"
      "is a small minority — the long-tail property Algorithm 1 relies "
      "on.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
