// Ablation of the matrix homogenization (§4.3): distance reduction vs
// iteration budget, the distance→accuracy relationship, and the paper's
// anecdote that homogenization recovers a catastrophic random order.
//
// Paper's claims: 80–90% distance reduction vs natural-order splitting on
// fine-trained CNNs; accuracy recovered from 54.21% to 98.22% in the
// anecdote.
//
// Flags: --network, --iters-list "0,1000,5000,30000", --images 1000.
#include <cstdio>
#include <sstream>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "split/homogenize.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {
std::vector<int> parse_ints(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network1");
  const std::string iters_csv =
      cli.get("iters-list", "0,300,1000,5000,30000", "iteration budgets");
  const int images = cli.get_int("images", 1000, "test images per point");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("Homogenization ablation: distance vs accuracy")) return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  core::HardwareConfig cfg;
  core::SeiNetwork net(art.qnet, cfg);
  int stage = -1;
  for (int s = 0; s + 1 < net.stage_count(); ++s)
    if (net.layer(s).block_count > 1) stage = s;
  SEI_CHECK_MSG(stage >= 0, "no hidden stage splits; nothing to ablate");
  const int k = net.layer(stage).block_count;
  const nn::Tensor& w = art.qnet.layers[static_cast<std::size_t>(stage)].weight;
  auto inputs = net.cache_stage_inputs(data.test, stage, images);

  std::printf("Homogenization ablation — %s stage %d (K=%d), AND vote rule\n"
              "(the rule under which order quality matters most)\n\n",
              net_name.c_str(), stage, k);

  TextTable t;
  t.header({"Iterations", "Distance", "Reduction", "Accepted swaps",
            "Error (AND rule)", "Error (majority)"});
  const double natural_dist = split::partition_distance(
      w, split::partition_from_order(
             split::natural_order(w.dim(0)), k));
  for (int iters : parse_ints(iters_csv)) {
    split::HomogenizeConfig hcfg;
    hcfg.iterations = iters;
    const split::HomogenizeResult res = split::homogenize_rows(w, k, hcfg);
    net.remap_layer(stage, res.order);
    net.layer(stage).dyn_beta = 0.0f;
    net.layer(stage).vote_threshold = k;  // AND: the order-sensitive rule
    const double err_and = net.error_rate_from(data.test, stage, inputs);
    net.layer(stage).vote_threshold = (k + 1) / 2;
    const double err_maj = net.error_rate_from(data.test, stage, inputs);
    t.row({std::to_string(iters), TextTable::num(res.final_distance, 4),
           TextTable::pct(res.reduction_pct(), 1),
           std::to_string(res.accepted_swaps), TextTable::pct(err_and),
           TextTable::pct(err_maj)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf("Natural-order distance: %.4f (0 iterations = natural order)\n",
              natural_dist);
  std::printf(
      "Shape check (paper): distance drops 80-90%% with optimization and the\n"
      "error under the naive rule falls with it.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
