// Spiking neural network on the SEI structure — the future-work extension
// from the paper's conclusion. Spikes are 1-bit events, so they drive the
// SEI selection gates directly: this design needs no DACs at all, not even
// on the input layer (the CNN design keeps input-layer DACs).
//
// The demo sweeps the time window and shows the latency/accuracy/activity
// trade-off of rate coding.
//
// Flags: --network network3, --images 500,
//        --timesteps "2,4,8,16,32,64", --bernoulli (stochastic coding).
#include <cstdio>
#include <sstream>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "snn/snn_network.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {
std::vector<int> parse_ints(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network3");
  const int images = cli.get_int("images", 500);
  const auto steps = parse_ints(cli.get("timesteps", "2,4,8,16,32,64"));
  const bool bernoulli =
      cli.get_bool("bernoulli", false, "stochastic instead of phased coding");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("rate-coded SNN on the SEI structure")) return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  std::printf("SNN on SEI — %s (%s coding)\n", net_name.c_str(),
              bernoulli ? "Bernoulli" : "phased");
  std::printf("float CNN error %.2f%%, 1-bit CNN error %.2f%%\n\n",
              art.float_test_error_pct, art.quant_error(data.test));

  TextTable t;
  t.header({"Timesteps", "Error", "Input spikes/img", "Hidden spikes/img",
            "Spikes per input bit"});
  const std::size_t per_image = 28 * 28;
  for (int ts : steps) {
    snn::SnnConfig cfg;
    cfg.timesteps = ts;
    cfg.coding = bernoulli ? snn::InputCoding::kBernoulli
                           : snn::InputCoding::kPhased;
    snn::SnnNetwork snn(art.qnet, cfg);
    // Accuracy plus average spike activity over a sample.
    double in_spikes = 0, hid_spikes = 0;
    const int sample = std::min(50, data.test.size());
    for (int i = 0; i < sample; ++i) {
      snn::SpikeStats s;
      snn.predict({data.test.images.data() +
                       static_cast<std::size_t>(i) * per_image,
                   per_image},
                  &s);
      in_spikes += static_cast<double>(s.input_spikes);
      hid_spikes += static_cast<double>(s.hidden_spikes);
    }
    const double err = snn.error_rate(data.test, images);
    t.row({std::to_string(ts), TextTable::pct(err),
           TextTable::num(in_spikes / sample, 0),
           TextTable::num(hid_spikes / sample, 0),
           TextTable::num(in_spikes / sample / (28.0 * 28.0), 2)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Reading the table: accuracy approaches the float CNN as the window\n"
      "grows, while energy scales with the spike count — the 1-bit-data\n"
      "regime the SEI structure was built for.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
