// Long-running serving walkthrough: a SEI chip serves a request stream,
// a mid-service fault silently damages the arrays, the canary sentinel
// notices the accuracy drop, the circuit breaker trips and the runtime
// repairs itself without a restart — with durable checkpoints the whole
// time, so a kill -9 resumes from the last saved state.
//
// Used by CI as a soak test: --min-availability fails the run (exit 1)
// when too many requests were rejected, and --strict additionally requires
// the breaker to have tripped and closed again with accuracy restored.
// SIGINT/SIGTERM drain gracefully, checkpoint and exit 0.
//
// Flags: --network network2, --requests 3000, --fault-at (default
// requests/3), --fault-stuck 0.05, --probe-every 8, --checkpoint-every 500,
// --checkpoint serve_demo.ckpt, --deadline-ms 0, --min-availability 0,
// --strict.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "arch/live_energy.hpp"
#include "common/cli.hpp"
#include "common/signals.hpp"
#include "core/adc_network.hpp"
#include "exec/thread_pool.hpp"
#include "reliability/repair.hpp"
#include "serve/runtime.hpp"
#include "telemetry/flags.hpp"
#include "telemetry/metrics.hpp"
#include "workloads/pipeline.hpp"

namespace {

/// Exact quantile (linear interpolation) of a sorted sample.
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (pos - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
}

}  // namespace

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const int requests = cli.get_int("requests", 3000, "requests to serve");
  const int fault_at = cli.get_int("fault-at", requests / 3,
                                   "served count of the fault (0 = none)");
  const double fault_stuck =
      cli.get_double("fault-stuck", 0.05, "stuck-cell fraction");
  const int probe_every =
      cli.get_int("probe-every", 8, "served requests per sentinel probe");
  const int ckpt_every =
      cli.get_int("checkpoint-every", 500, "served requests per checkpoint");
  const std::string ckpt_path =
      cli.get("checkpoint", "serve_demo.ckpt", "durable checkpoint file");
  const int deadline_ms =
      cli.get_int("deadline-ms", 0, "per-request deadline (0 = none)");
  const double min_availability = cli.get_double(
      "min-availability", 0.0, "fail when availability drops below this %");
  const bool strict =
      cli.get_bool("strict", false, "require trip + closed recovery");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("fault-tolerant serving runtime walkthrough / soak test"))
    return 0;
  SEI_CHECK_MSG(requests > 0, "requests must be positive");

  install_shutdown_handler();

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  core::HardwareConfig hw;
  hw.spare_row_fraction = 0.1;
  core::SeiNetwork net(
      art.qnet, hw,
      reliability::make_repair_hook(reliability::RepairConfig{}, nullptr));
  const core::AdcNetwork fallback(art.qnet, core::AdcConfig{}, data.train);

  serve::RuntimeConfig rc;
  rc.queue_capacity = 64;
  rc.default_deadline = std::chrono::milliseconds(deadline_ms);
  rc.checkpoint_every = ckpt_every;
  rc.checkpoint_path = ckpt_path;
  rc.sentinel.probe_every = probe_every;
  rc.calibration.max_images = 200;
  serve::ServingRuntime runtime(net, art.qnet, data.test, data.train, rc,
                                &fallback);
  if (fault_at > 0) {
    serve::FaultSchedule sched;
    sched.events.push_back(
        {static_cast<std::uint64_t>(fault_at), -1, fault_stuck, 1.0});
    runtime.set_fault_schedule(sched);
  }
  runtime.start();
  std::printf("[serve] %s from %s (baseline %.2f%%), %d requests, fault at "
              "%d (%.1f%% stuck)\n",
              runtime.resumed_from_checkpoint() ? "resumed" : "cold start",
              ckpt_path.c_str(), runtime.sentinel_baseline_pct(), requests,
              fault_at, 100.0 * fault_stuck);

  const std::size_t per_image =
      data.test.images.numel() / static_cast<std::size_t>(data.test.size());
  std::uint64_t answered = 0, available = 0;
  std::deque<std::future<serve::Response>> inflight;
  auto settle_front = [&] {
    const serve::Response r = inflight.front().get();
    inflight.pop_front();
    ++answered;
    if (r.status != serve::ResponseStatus::kRejected) ++available;
  };
  for (int i = 0; i < requests && !shutdown_requested(); ++i) {
    const int k = i % data.test.size();
    inflight.push_back(runtime.submit(
        {data.test.images.data() + static_cast<std::size_t>(k) * per_image,
         per_image}));
    while (static_cast<int>(inflight.size()) >= rc.queue_capacity)
      settle_front();
  }
  while (!inflight.empty()) settle_front();
  runtime.stop();
  if (shutdown_requested())
    std::printf("[serve] interrupted; drained and checkpointed\n");

  const serve::RuntimeStats st = runtime.stats();
  const double availability =
      answered == 0 ? 100.0
                    : 100.0 * static_cast<double>(available) /
                          static_cast<double>(answered);
  std::printf("[serve] answered %llu: ok %llu, degraded %llu, rejected %llu "
              "-> availability %.2f%%\n",
              static_cast<unsigned long long>(answered),
              static_cast<unsigned long long>(st.ok),
              static_cast<unsigned long long>(st.degraded),
              static_cast<unsigned long long>(st.rejected), availability);
  std::printf("[serve] probes %llu, checkpoints %llu, breaker trips %d\n",
              static_cast<unsigned long long>(st.probes),
              static_cast<unsigned long long>(st.checkpoints),
              st.breaker_trips);
  for (const serve::BreakerEvent& e : runtime.breaker_events())
    std::printf("[breaker] @%-6llu %s -> %s (tier %d): %s\n",
                static_cast<unsigned long long>(e.at_served),
                serve::to_string(e.from), serve::to_string(e.to), e.tier,
                e.note.c_str());

  bool recovered_ok = false;
  for (const serve::RecoveryRecord& r : runtime.recoveries()) {
    std::printf("[recover] tripped @%llu (%.2f%%), %s @%llu at tier %d "
                "(%.2f%%, %.1f ms)\n",
                static_cast<unsigned long long>(r.tripped_at_served),
                r.acc_before_pct, r.closed ? "closed" : "degraded",
                static_cast<unsigned long long>(r.resolved_at_served),
                r.tier_reached, r.acc_after_pct, r.duration_ms);
    if (r.closed &&
        r.acc_after_pct >= runtime.sentinel_baseline_pct() - 2.0 &&
        (fault_at == 0 ||
         r.tripped_at_served <= static_cast<std::uint64_t>(fault_at) + 200))
      recovered_ok = true;
  }

  // ---- Telemetry summary: exact latency percentiles, metered joules per
  // inference by path, and the paper's Fig. 1 interface-vs-array story.
  // Everything printed here is also set as gauges so --metrics-out carries it.
  auto& reg = telemetry::MetricsRegistry::global();
  std::vector<double> lat = runtime.latencies_ms();
  std::sort(lat.begin(), lat.end());
  const double p50 = quantile(lat, 0.50), p99 = quantile(lat, 0.99);
  reg.gauge("serve_latency_p50_ms").set(p50);
  reg.gauge("serve_latency_p99_ms").set(p99);
  std::printf("[serve] latency p50 %.3f ms, p99 %.3f ms (%zu samples)\n", p50,
              p99, lat.size());

  const serve::EnergySummary energy = runtime.energy();
  auto report_path = [&](const char* path, const telemetry::EnergyAccum& a) {
    if (a.images == 0) return;
    const double iface_pct = 100.0 * a.pj.interface() / a.pj.total();
    const double array_pct = 100.0 * a.pj.array() / a.pj.total();
    reg.gauge("serve_energy_uj_per_inference{path=\"" + std::string(path) +
              "\"}").set(a.joules_per_image() * 1e6);
    reg.gauge("serve_interface_energy_pct{path=\"" + std::string(path) +
              "\"}").set(iface_pct);
    reg.gauge("serve_array_energy_pct{path=\"" + std::string(path) + "\"}")
        .set(array_pct);
    std::printf("[energy] %-5s %6llu images, %.3f uJ/inference "
                "(interface %.1f%%, array %.1f%%)\n",
                path, static_cast<unsigned long long>(a.images),
                a.joules_per_image() * 1e6, iface_pct, array_pct);
  };
  report_path("sei", energy.sei);
  report_path("adc", energy.adc);
  report_path("probe", energy.probe);

  // Fig. 1 direction check on the static per-picture price lists (always
  // available, even when the breaker never reached the ADC fallback): the
  // conventional DAC/ADC interface must dominate its budget while SEI's
  // sense-amp interface is the cheaper slice.
  const telemetry::EnergyBreakdown sei_pj =
      arch::make_energy_meter(art.qnet, hw, core::StructureKind::kSei)
          .network_pj();
  const telemetry::EnergyBreakdown adc_pj =
      arch::make_energy_meter(art.qnet, hw, core::StructureKind::kBinInputAdc)
          .network_pj();
  const double iface_ratio = adc_pj.interface() / sei_pj.interface();
  const bool fig1_ok =
      iface_ratio > 1.0 && adc_pj.interface() / adc_pj.total() >
                               sei_pj.interface() / sei_pj.total();
  reg.gauge("serve_interface_ratio_adc_vs_sei").set(iface_ratio);
  reg.gauge("serve_fig1_direction_ok").set(fig1_ok ? 1.0 : 0.0);
  std::printf("[energy] interface energy ADC/SEI = %.2fx; interface share "
              "ADC %.1f%% vs SEI %.1f%% -> Fig. 1 direction %s\n",
              iface_ratio, 100.0 * adc_pj.interface() / adc_pj.total(),
              100.0 * sei_pj.interface() / sei_pj.total(),
              fig1_ok ? "reproduced" : "NOT reproduced");

  int exit_code = 0;
  if (min_availability > 0.0 && availability < min_availability &&
      !shutdown_requested()) {
    std::fprintf(stderr, "FAIL: availability %.2f%% < %.2f%%\n", availability,
                 min_availability);
    exit_code = 1;
  }
  if (strict && fault_at > 0 && !shutdown_requested() && !recovered_ok) {
    std::fprintf(stderr,
                 "FAIL: breaker never tripped+closed with accuracy within "
                 "2 pts of baseline\n");
    exit_code = 1;
  }
  telemetry::telemetry_flush(tel);
  return exit_code;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
