// Walks one chip through the full reliability story, step by step:
//
//   1. map the network onto a healthy chip (baseline error);
//   2. injure it — 2% stuck cells at mapping time (error collapses);
//   3. diagnose/repair at mapping time: spare rows are provisioned, the
//      repair hook retries misprogrammed cells and remaps stuck rows;
//   4. recalibrate the sense-amp thresholds on a calibration batch;
//   5. additionally age the repaired chip (conductance drift) and show the
//      maintenance loop catching the drifted cells too.
//
// Flags: --network network2, --images 500, --stuck 0.02, --seed 7.
#include <cstdio>

#include "arch/cost_model.hpp"
#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "reliability/calibrate.hpp"
#include "reliability/repair.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const int images = cli.get_int("images", 500, "test images per step");
  const double stuck = cli.get_double("stuck", 0.02, "stuck-cell fraction");
  const int seed = cli.get_int("seed", 7, "chip seed");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("fault injection → repair → recalibration walkthrough"))
    return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  // 1. Healthy chip.
  core::HardwareConfig healthy;
  healthy.seed = static_cast<std::uint64_t>(seed);
  core::SeiNetwork golden(art.qnet, healthy);
  const double base_err = golden.error_rate(data.test, images);
  std::printf("[1] healthy chip                      error %6.2f%%\n",
              base_err);

  // 2. The same chip with stuck cells and no countermeasures.
  core::HardwareConfig faulty = healthy;
  faulty.device.stuck_fraction = stuck;
  {
    core::SeiNetwork hurt(art.qnet, faulty);
    std::printf("[2] %4.1f%% cells stuck, no repair      error %6.2f%%\n",
                100.0 * stuck, hurt.error_rate(data.test, images));
  }

  // 3. Provision spares and let the repair hook run at mapping time.
  core::HardwareConfig repaired_cfg = faulty;
  repaired_cfg.spare_row_fraction = 0.25;
  reliability::RepairReport rep;
  core::SeiNetwork repaired(
      art.qnet, repaired_cfg,
      reliability::make_repair_hook(reliability::RepairConfig{}, &rep));
  std::printf("[3] diagnose + retry + spare remap     error %6.2f%%\n"
              "    (%d faults, %d cells recovered by retry, %d rows "
              "remapped, %d unrepairable)\n",
              repaired.error_rate(data.test, images), rep.faults_found,
              rep.cells_recovered, rep.rows_remapped, rep.rows_unrepairable);

  // 4. Trim the thresholds on a calibration batch (never the test set).
  const reliability::CalibrationReport cal =
      reliability::recalibrate_thresholds(repaired, data.train);
  const double final_err = repaired.error_rate(data.test, images);
  std::printf("[4] threshold recalibration            error %6.2f%% "
              "(within %.2f pts of healthy)\n",
              final_err, final_err - base_err);
  for (const reliability::StageTrim& s : cal.stages)
    std::printf("    stage %d trim gamma %.2f (calib %.2f%% -> %.2f%%)\n",
                s.stage, s.gamma, s.error_before_pct, s.error_after_pct);

  // 5. The maintenance loop also catches retention loss: age the arrays at
  // mapping time and let the same hook repair the drifted cells.
  core::HardwareConfig aged_cfg = repaired_cfg;
  aged_cfg.device.drift_nu = 0.05;
  aged_cfg.device.drift_nu_sigma = 0.02;
  aged_cfg.device.drift_t_s = 1.0e7;  // ~4 months on the shelf
  reliability::RepairReport aged_rep;
  core::SeiNetwork aged(
      art.qnet, aged_cfg,
      reliability::make_repair_hook(reliability::RepairConfig{}, &aged_rep));
  reliability::recalibrate_thresholds(aged, data.train);
  std::printf("[5] + 4 months of drift, same loop     error %6.2f%% "
              "(%d drifted/stuck cells flagged)\n",
              aged.error_rate(data.test, images), aged_rep.faults_found);

  // What the reliability machinery costs in hardware terms.
  const arch::NetworkCost cost = arch::estimate_cost(
      art.wl.topo, repaired_cfg, core::StructureKind::kSei);
  const arch::ReliabilityCost rc = arch::reliability_cost(
      cost, rep.cell_writes, 100);
  std::printf("\nreliability price: %lld spare cells (%.2f um2), "
              "repair writes %.3f uJ, recalibration %.3f uJ\n",
              rc.spare_cells, rc.spare_area_um2, rc.repair_energy_uj,
              rc.recalibration_energy_uj);
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
