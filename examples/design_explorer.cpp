// Design-space exploration: an architect picking an SEI design point.
//
// Sweeps the maximum crossbar size and the device precision, reporting
// hardware accuracy, energy, area and efficiency for each point — the kind
// of table the paper's "energy efficiency gains further increase if we
// have to use smaller crossbars" discussion implies.
//
// Flags: --network network1, --images 1000,
//        --sizes "128,256,512", --bits "2,4,6".
#include <cstdio>
#include <sstream>

#include "arch/cost_model.hpp"
#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

namespace {
std::vector<int> parse_ints(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
  return out;
}
}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network1");
  const int images = cli.get_int("images", 1000, "test images per point");
  const auto sizes = parse_ints(cli.get("sizes", "128,256,512"));
  const auto bits = parse_ints(cli.get("bits", "2,4,6"));
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("SEI design-space exploration")) return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});
  const workloads::Workload wl = workloads::workload_by_name(net_name);

  std::printf("SEI design space for %s (binary-software error %.2f%%)\n\n",
              net_name.c_str(), art.quant_error(data.test));

  TextTable t;
  t.header({"Crossbar", "Device bits", "Cells/wt", "Crossbars", "Error",
            "Energy uJ/pic", "Area mm^2", "GOPs/J"});
  for (int size : sizes) {
    for (int b : bits) {
      core::HardwareConfig cfg;
      cfg.limits.max_rows = size;
      cfg.limits.max_cols = size;
      cfg.device.bits = b;
      core::SeiNetwork sei =
          workloads::make_sei_network(art, cfg, data, true);
      const auto cost =
          arch::estimate_cost(wl.topo, cfg, core::StructureKind::kSei);
      t.row({std::to_string(size) + "x" + std::to_string(size),
             std::to_string(b), std::to_string(cfg.cells_per_weight()),
             std::to_string(sei.total_crossbars()),
             TextTable::pct(sei.error_rate(data.test, images)),
             TextTable::num(cost.energy_uj_per_picture()),
             TextTable::num(cost.area_mm2(), 3),
             TextTable::num(cost.gops_per_joule(), 0)});
    }
    t.separator();
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Reading the table: higher-precision devices halve the cell count\n"
      "(fewer bit slices) but are harder to fabricate [13]; smaller\n"
      "crossbars split more and push the vote/threshold compensation\n"
      "harder.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
