// Fleet serving walkthrough, operator's view: three independently-mapped
// SEI replicas serve two tenants with weighted-fair admission, a fault
// storm takes shard 1 out mid-run, traffic fails over to its replicas with
// zero shed requests, and once the storm passes the periodic repair heals
// the shard and it rejoins the rotation.
//
// The printout is the story an on-call engineer would reconstruct from the
// telemetry: a failover timeline, each shard's breaker transitions, and the
// per-tenant service/fairness table.
//
// Flags: --network network2, --requests 9000, --shards 3, --tenants A:2,B:1,
// --storm-at (default requests/3), --storm-stuck 0.5, --storm-duration
// (default requests/3), --probe-every 8.
#include <cstdio>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/signals.hpp"
#include "core/adc_network.hpp"
#include "exec/thread_pool.hpp"
#include "reliability/repair.hpp"
#include "serve/fleet.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const int requests = cli.get_int("requests", 9000, "requests to submit");
  const int nshards = cli.get_int("shards", 3, "SEI replica count");
  const std::string tenant_spec =
      cli.get("tenants", "A:2,B:1", "tenant weights, name:weight[,...]");
  const int storm_at = cli.get_int("storm-at", requests / 3,
                                   "storm strike dispatch count (0 = none)");
  const double storm_stuck =
      cli.get_double("storm-stuck", 0.5, "stuck fraction of the strike");
  const int storm_duration = cli.get_int(
      "storm-duration", requests / 3, "dispatches the storm persists");
  const int probe_every =
      cli.get_int("probe-every", 8, "served requests per sentinel probe");
  const int skip_bound = cli.get_int(
      "skip-bound", -1,
      "word-skip bound on every SEI stage (-1 = dense); with a bound set, "
      "tenants are billed per activated row (docs/sparsity.md)");
  if (!cli.validate("fleet serving demo: failover and weighted fairness"))
    return 0;
  install_shutdown_handler();

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});

  std::printf("== building %d replicas of %s ==\n", nshards, net_name.c_str());
  std::vector<std::unique_ptr<core::SeiNetwork>> nets;
  std::vector<core::SeiNetwork*> ptrs;
  for (int k = 0; k < nshards; ++k) {
    core::HardwareConfig hw;
    hw.seed += static_cast<std::uint64_t>(k) * 1000003ULL;
    hw.spare_row_fraction = 0.1;
    nets.push_back(std::make_unique<core::SeiNetwork>(
        art.qnet, hw,
        reliability::make_repair_hook(reliability::RepairConfig{}, nullptr)));
    if (skip_bound >= 0)
      nets.back()->set_skip_bounds(std::vector<int>(
          static_cast<std::size_t>(nets.back()->stage_count()), skip_bound));
    ptrs.push_back(nets.back().get());
  }
  core::AdcNetwork fallback(art.qnet, core::AdcConfig{}, data.train);

  serve::FleetConfig fc;
  fc.tenants = serve::parse_tenant_specs(tenant_spec);
  for (serve::TenantConfig& t : fc.tenants) t.queue_capacity = 256;
  fc.sentinel.probe_every = probe_every;
  fc.calibration.max_images = 200;
  serve::FleetRuntime fleet(ptrs, art.qnet, data.test, data.train, fc,
                            &fallback);
  if (storm_at > 0) {
    serve::StormSchedule storm;
    storm.events.push_back({static_cast<std::uint64_t>(storm_at), 1,
                            {0, -1, storm_stuck, 1.0},
                            static_cast<std::uint64_t>(storm_duration)});
    fleet.set_storm(storm);
    std::printf("storm scheduled: shard 1, strike @%d, stuck %.0f%%, "
                "overhead for %d dispatches\n",
                storm_at, 100.0 * storm_stuck, storm_duration);
  }

  fleet.start();
  const int ntenants = fleet.tenant_count();
  const std::size_t per_image =
      data.test.images.numel() / static_cast<std::size_t>(data.test.size());
  auto image = [&](int i) {
    const int k = i % data.test.size();
    return std::span<const float>{
        data.test.images.data() + static_cast<std::size_t>(k) * per_image,
        per_image};
  };

  std::printf("\n== serving %d requests across %d tenants ==\n", requests,
              ntenants);
  std::deque<std::future<serve::FleetResponse>> inflight;
  std::vector<std::uint64_t> served(static_cast<std::size_t>(ntenants), 0);
  Rng arrivals = Rng::fork(4242, 0);
  for (int i = 0; i < requests && !shutdown_requested(); ++i) {
    while (inflight.size() >= 128) {
      const serve::FleetResponse r = inflight.front().get();
      inflight.pop_front();
      if (r.status != serve::FleetResponseStatus::kRejected)
        ++served[static_cast<std::size_t>(r.tenant)];
    }
    const int tenant = static_cast<int>(
        arrivals.below(static_cast<std::uint64_t>(ntenants)));
    inflight.push_back(fleet.submit(tenant, image(i)));
  }
  while (!inflight.empty()) {
    const serve::FleetResponse r = inflight.front().get();
    inflight.pop_front();
    if (r.status != serve::FleetResponseStatus::kRejected)
      ++served[static_cast<std::size_t>(r.tenant)];
  }
  fleet.stop();

  const serve::FleetStats st = fleet.stats();
  std::printf("\n== failover timeline ==\n");
  const std::vector<serve::FailoverEvent> fo = fleet.failovers();
  if (fo.empty()) {
    std::printf("(no failovers — every request served on its home shard)\n");
  } else {
    std::printf("%zu re-routes; first @dispatch %llu (shard %d -> %d), "
                "last @dispatch %llu\n",
                fo.size(),
                static_cast<unsigned long long>(fo.front().at_dispatched),
                fo.front().home_shard, fo.front().to_shard,
                static_cast<unsigned long long>(fo.back().at_dispatched));
  }

  std::printf("\n== shard timelines ==\n");
  for (int k = 0; k < nshards; ++k) {
    const serve::ShardStats& ss = st.shards[static_cast<std::size_t>(k)];
    std::printf("shard %d: served %llu, final state %s, trips %d\n", k,
                static_cast<unsigned long long>(ss.served),
                serve::to_string(ss.state), ss.trips);
    for (const serve::BreakerEvent& e : fleet.shard_breaker_events(k))
      std::printf("  @served %-6llu %-8s -> %-8s  %s\n",
                  static_cast<unsigned long long>(e.at_served),
                  serve::to_string(e.from), serve::to_string(e.to),
                  e.note.c_str());
  }

  std::printf("\n== tenant service table (weighted-fair) ==\n");
  std::printf("%-8s %-7s %-9s %-9s %-9s %-10s\n", "tenant", "weight",
              "admitted", "served", "rejected", "energy (J)");
  std::vector<double> normalized;
  for (int t = 0; t < ntenants; ++t) {
    const serve::TenantCounters& c = st.tenants[static_cast<std::size_t>(t)];
    const serve::TenantConfig& tc = fc.tenants[static_cast<std::size_t>(t)];
    std::printf("%-8s %-7.1f %-9llu %-9llu %-9llu %-10.3g\n",
                tc.name.c_str(), tc.weight,
                static_cast<unsigned long long>(c.admitted),
                static_cast<unsigned long long>(c.ok + c.degraded),
                static_cast<unsigned long long>(c.rejected),
                c.energy_j);
    normalized.push_back(
        static_cast<double>(served[static_cast<std::size_t>(t)]) / tc.weight);
  }
  std::printf("jain fairness (weight-normalized service): %.4f\n",
              serve::jain_fairness(normalized));
  std::printf("fleet: %llu dispatched, %llu failovers, %llu degraded, "
              "%llu shed\n",
              static_cast<unsigned long long>(st.total_dispatched),
              static_cast<unsigned long long>(st.failovers),
              static_cast<unsigned long long>(st.fallback_served),
              static_cast<unsigned long long>(st.shed));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
