// Manufacturing-variability study: how robust is a finished SEI design to
// device non-idealities? Replicates the mapping across independent
// programming seeds and reports mean ± stddev error under programming
// variation, read noise, and stuck cells — the "non-ideal factors" the
// paper defers to future work.
//
// Flags: --network network2, --replicas 5, --images 800.
#include <cstdio>

#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network2");
  const int replicas = cli.get_int("replicas", 5, "independent chips");
  const int images = cli.get_int("images", 800, "test images per chip");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("device-variation robustness study")) return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, {});
  std::printf("Variation study — %s, %d replicas x %d images "
              "(software binary error %.2f%%)\n\n",
              net_name.c_str(), replicas, images,
              art.quant_error(data.test));

  auto replicate = [&](core::HardwareConfig cfg, RunningStats& stats) {
    for (int r = 0; r < replicas; ++r) {
      cfg.seed = 90000 + static_cast<std::uint64_t>(r);  // a new "chip"
      core::SeiNetwork sei(art.qnet, cfg);
      stats.add(sei.error_rate(data.test, images));
    }
  };

  TextTable t;
  t.header({"Non-ideality", "Setting", "Error mean", "Error stddev",
            "Error max"});
  {
    core::HardwareConfig cfg;
    RunningStats s;
    replicate(cfg, s);
    t.row({"none (ideal devices)", "-", TextTable::pct(s.mean()),
           TextTable::num(s.stddev(), 3), TextTable::pct(s.max())});
    t.separator();
  }
  for (double sigma : {0.02, 0.05, 0.10, 0.20}) {
    core::HardwareConfig cfg;
    cfg.device.program_sigma = sigma;
    RunningStats s;
    replicate(cfg, s);
    t.row({"programming variation", "sigma=" + TextTable::num(sigma, 2),
           TextTable::pct(s.mean()), TextTable::num(s.stddev(), 3),
           TextTable::pct(s.max())});
  }
  t.separator();
  for (double noise : {0.01, 0.03, 0.08}) {
    core::HardwareConfig cfg;
    cfg.device.read_noise_sigma = noise;
    RunningStats s;
    replicate(cfg, s);
    t.row({"read noise (per MVM)", "sigma=" + TextTable::num(noise, 2),
           TextTable::pct(s.mean()), TextTable::num(s.stddev(), 3),
           TextTable::pct(s.max())});
  }
  t.separator();
  for (double frac : {0.002, 0.01, 0.05}) {
    core::HardwareConfig cfg;
    cfg.device.stuck_fraction = frac;
    RunningStats s;
    replicate(cfg, s);
    t.row({"stuck cells", TextTable::pct(100 * frac, 1) + " of array",
           TextTable::pct(s.mean()), TextTable::num(s.stddev(), 3),
           TextTable::pct(s.max())});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Interpretation: the 1-bit sense-amp decision absorbs small analog\n"
      "errors (only near-threshold sums can flip), so moderate variation\n"
      "degrades the SEI design gracefully.\n");
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
