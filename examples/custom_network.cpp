// Bring-your-own network: defines a CNN topology from a compact CLI spec,
// trains it, quantizes it and maps it onto the SEI structure — the workflow
// a user follows to evaluate their own model on this hardware.
//
// Spec grammar (comma-separated stages):
//   cKxN[p]  — conv with K×K kernel, N output channels, optional 2×2 pool
//   fN       — fully-connected classifier with N outputs (must be last)
// Example: --spec "c5x8p,c3x16p,f10"  (default)
//
// Flags: --spec, --epochs 5, --train 4000, --test 800, --max-crossbar 512.
#include <cstdio>
#include <sstream>

#include "arch/cost_model.hpp"
#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "core/dyn_opt.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "workloads/networks.hpp"

using namespace sei;

namespace {

quant::Topology parse_spec(const std::string& spec) {
  quant::Topology topo;
  topo.name = "custom";
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    SEI_CHECK_MSG(!item.empty(), "empty stage in spec");
    quant::StageSpec s;
    if (item[0] == 'c') {
      const auto x = item.find('x');
      SEI_CHECK_MSG(x != std::string::npos, "conv stage needs KxN: " << item);
      s.kind = quant::StageSpec::Kind::Conv;
      s.kernel = std::stoi(item.substr(1, x - 1));
      std::string rest = item.substr(x + 1);
      if (!rest.empty() && rest.back() == 'p') {
        s.pool_after = true;
        rest.pop_back();
      }
      s.out_channels = std::stoi(rest);
    } else if (item[0] == 'f') {
      s.kind = quant::StageSpec::Kind::Fc;
      s.out_channels = std::stoi(item.substr(1));
    } else {
      SEI_CHECK_MSG(false, "unknown stage kind: " << item);
    }
    topo.stages.push_back(s);
  }
  SEI_CHECK_MSG(!topo.stages.empty() &&
                    topo.stages.back().kind == quant::StageSpec::Kind::Fc,
                "spec must end with a fully-connected classifier (fN)");
  return topo;
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string spec =
      cli.get("spec", "c5x8p,c3x16p,f10", "topology spec (see header)");
  const int epochs = cli.get_int("epochs", 5);
  const int train_n = cli.get_int("train", 4000);
  const int test_n = cli.get_int("test", 800);
  const int max_size = cli.get_int("max-crossbar", 512);
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("map a custom CNN onto the SEI structure")) return 0;

  const quant::Topology topo = parse_spec(spec);
  const auto geoms = quant::resolve_geometry(topo);
  TextTable shape("Topology " + spec);
  shape.header({"Stage", "Kind", "Input", "Matrix", "Pool"});
  for (std::size_t i = 0; i < geoms.size(); ++i) {
    const auto& g = geoms[i];
    shape.row({std::to_string(i),
               g.kind == quant::StageSpec::Kind::Conv ? "conv" : "fc",
               std::to_string(g.in_h) + "x" + std::to_string(g.in_w) + "x" +
                   std::to_string(g.in_ch),
               std::to_string(g.rows) + "x" + std::to_string(g.cols),
               g.pool_after ? "2x2" : "-"});
  }
  std::printf("%s\n", shape.str().c_str());

  data::DataBundle data = data::synthetic_bundle(train_n, test_n, 11);
  nn::Network net = workloads::build_float_network(topo, 2);
  nn::TrainConfig tc;
  tc.epochs = epochs;
  tc.verbose = true;
  nn::Trainer(tc).fit(net, data.train.images, data.train.label_span());
  std::printf("float test error:      %.2f%%\n",
              net.error_rate(data.test.images, data.test.label_span()));

  quant::SearchConfig search;
  search.max_search_images = std::min(1500, train_n);
  quant::QuantizationResult q =
      quant::quantize_network(net, topo, data.train, search);
  std::printf("1-bit quantized error: %.2f%%\n", q.qnet.error_rate(data.test));

  core::HardwareConfig cfg;
  cfg.limits.max_rows = max_size;
  cfg.limits.max_cols = max_size;
  core::SeiNetwork sei(q.qnet, cfg);
  core::optimize_dynamic_threshold(sei, data.train);
  std::printf("SEI hardware error:    %.2f%%  (%d crossbars)\n",
              sei.error_rate(data.test), sei.total_crossbars());

  const auto base = arch::estimate_cost(topo, cfg, core::StructureKind::kDacAdc8);
  const auto cost = arch::estimate_cost(topo, cfg, core::StructureKind::kSei);
  std::printf("energy %.2f -> %.2f uJ/pic (%.1f%% saved), "
              "area %.3f -> %.3f mm^2 (%.1f%% saved), %.0f GOPs/J\n",
              base.energy_uj_per_picture(), cost.energy_uj_per_picture(),
              arch::saving_pct(base.energy_pj.total(), cost.energy_pj.total()),
              base.area_mm2(), cost.area_mm2(),
              arch::saving_pct(base.area_um2.total(), cost.area_um2.total()),
              cost.gops_per_joule());
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
