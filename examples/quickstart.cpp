// Quickstart: the whole library in ~80 lines.
//
// Trains a small CNN on the synthetic digit task, quantizes its
// intermediate data to 1 bit with Algorithm 1, maps it onto simulated RRAM
// crossbars with the SEI structure, classifies a few digits in "hardware",
// and prints the energy/area comparison against the DAC+ADC baseline.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "arch/cost_model.hpp"
#include "core/sei_network.hpp"
#include "data/synthetic_digits.hpp"
#include "nn/trainer.hpp"
#include "quant/threshold_search.hpp"
#include "workloads/networks.hpp"

using namespace sei;

int main() try {
  // 1. Data: 8000 training digits, 1000 test digits (deterministic seeds).
  data::DataBundle data = data::synthetic_bundle(8000, 1000, /*seed=*/7);

  // 2. A small CNN (Table 2's Network 3: conv3x3x6 → conv3x3x12 → fc 300x10).
  workloads::Workload wl = workloads::network3();
  wl.train.epochs = 8;
  nn::Network float_net = workloads::build_float_network(wl.topo, /*seed=*/1);
  nn::Trainer(wl.train).fit(float_net, data.train.images,
                            data.train.label_span());
  std::printf("float test error:      %.2f%%\n",
              float_net.error_rate(data.test.images, data.test.label_span()));

  // 3. Algorithm 1: layer-by-layer greedy 1-bit quantization.
  quant::SearchConfig search;
  search.max_search_images = 2000;
  quant::QuantizationResult q =
      quant::quantize_network(float_net, wl.topo, data.train, search);
  std::printf("1-bit quantized error: %.2f%%\n",
              q.qnet.error_rate(data.test));
  for (const auto& tr : q.traces)
    std::printf("  stage %d: threshold %.3f (searched over %zu candidates)\n",
                tr.stage, tr.best_threshold, tr.curve.size());

  // 4. Map onto RRAM crossbars with the SEI structure: signed 8-bit weights
  //    on 4-bit devices in a single crossbar per block, no merging ADCs.
  core::HardwareConfig hw;
  core::SeiNetwork sei(q.qnet, hw);
  std::printf("SEI hardware error:    %.2f%%  (%d crossbars, %lld cells)\n",
              sei.error_rate(data.test), sei.total_crossbars(),
              sei.total_cells());

  // 5. Classify a few digits on the simulated hardware.
  std::printf("sample predictions (truth -> predicted): ");
  const std::size_t per_image = 28 * 28;
  for (int i = 0; i < 8; ++i) {
    const int pred = sei.predict(
        {data.test.images.data() + static_cast<std::size_t>(i) * per_image,
         per_image});
    std::printf("%d->%d ", data.test.labels[static_cast<std::size_t>(i)], pred);
  }
  std::printf("\n\n");

  // 6. What did eliminating the converters buy?
  const auto base =
      arch::estimate_cost(wl.topo, hw, core::StructureKind::kDacAdc8);
  const auto sei_cost =
      arch::estimate_cost(wl.topo, hw, core::StructureKind::kSei);
  std::printf("energy: %.2f uJ/picture (baseline) -> %.2f uJ/picture (SEI), "
              "%.1f%% saved\n",
              base.energy_uj_per_picture(), sei_cost.energy_uj_per_picture(),
              arch::saving_pct(base.energy_pj.total(),
                               sei_cost.energy_pj.total()));
  std::printf("area:   %.3f mm^2 (baseline) -> %.3f mm^2 (SEI), %.1f%% saved\n",
              base.area_mm2(), sei_cost.area_mm2(),
              arch::saving_pct(base.area_um2.total(),
                               sei_cost.area_um2.total()));
  std::printf("efficiency: %.0f GOPs/J (SEI) vs %.0f GOPs/J (baseline)\n",
              sei_cost.gops_per_joule(), base.gops_per_joule());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
