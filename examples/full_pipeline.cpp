// The paper's complete flow on one of the Table 2 networks, using the
// shared model cache (first run trains, later runs load):
//   data → float training → Algorithm 1 → homogenized SEI mapping with the
//   dynamic-threshold compensation → hardware accuracy → energy/area.
//
// Flags: --network network1|network2|network3 (default network1),
//        --max-crossbar 512, --unipolar (use the §4.2 sign mode).
#include <cstdio>

#include "arch/cost_model.hpp"
#include "arch/latency_model.hpp"
#include "arch/report.hpp"
#include "common/cli.hpp"
#include "telemetry/flags.hpp"
#include "exec/thread_pool.hpp"
#include "common/table.hpp"
#include "core/dyn_opt.hpp"
#include "workloads/pipeline.hpp"

using namespace sei;

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  exec::set_default_threads(cli.get_threads());
  const std::string net_name = cli.get("network", "network1");
  const int max_size = cli.get_int("max-crossbar", 512);
  const bool unipolar =
      cli.get_bool("unipolar", false, "use the unipolar dynamic-threshold "
                                      "weight mapping (Section 4.2)");
  const auto tel = telemetry::telemetry_flags(cli);
  if (!cli.validate("full SEI pipeline on a Table 2 network")) return 0;

  data::DataBundle data = workloads::load_default_data(true);
  workloads::PipelineOptions opts;
  opts.verbose = true;
  workloads::Artifacts art = workloads::prepare_workload(net_name, data, opts);

  std::printf("\n== %s on %s ==\n", net_name.c_str(), data.source.c_str());
  std::printf("float test error:      %.2f%%\n", art.float_test_error_pct);
  std::printf("1-bit quantized error: %.2f%%\n", art.quant_error(data.test));

  core::HardwareConfig cfg;
  cfg.limits.max_rows = max_size;
  cfg.limits.max_cols = max_size;
  if (unipolar) cfg.sign_mode = core::SignMode::kUnipolarDynThresh;

  core::DynThreshResult dyn;
  core::SeiNetwork sei = workloads::make_sei_network(art, cfg, data, true, &dyn);
  std::printf("SEI hardware error:    %.2f%%\n", sei.error_rate(data.test));

  TextTable layout("Physical layout (" + std::string(unipolar
                       ? "unipolar dynamic-threshold"
                       : "bipolar ±port") + " mapping)");
  layout.header({"Stage", "Logical matrix", "Cells/weight", "Crossbars",
                 "Vote", "Beta"});
  for (int s = 0; s < sei.stage_count(); ++s) {
    const auto& m = sei.layer(s);
    layout.row({std::to_string(s),
                std::to_string(m.geom.rows) + "x" + std::to_string(m.geom.cols),
                std::to_string(m.physical_rows_per_weight),
                std::to_string(m.crossbars),
                m.binarize ? std::to_string(m.vote_threshold) + "/" +
                                 std::to_string(m.block_count)
                           : "WTA",
                TextTable::num(m.dyn_beta, 3)});
  }
  std::printf("\n%s\n", layout.str().c_str());

  TextTable costs("Structure comparison");
  costs.header({"Structure", "Energy uJ/pic", "Area mm^2", "GOPs/J"});
  const workloads::Workload wl = workloads::workload_by_name(net_name);
  for (auto kind : {core::StructureKind::kDacAdc8,
                    core::StructureKind::kBinInputAdc,
                    core::StructureKind::kSei}) {
    const auto c = arch::estimate_cost(wl.topo, cfg, kind);
    costs.row({core::to_string(kind),
               TextTable::num(c.energy_uj_per_picture()),
               TextTable::num(c.area_mm2(), 3),
               TextTable::num(c.gops_per_joule(), 0)});
  }
  std::printf("%s", costs.str().c_str());

  // The paper's buffer/replication power-vs-time trade at constant energy.
  const auto sei_cost =
      arch::estimate_cost(wl.topo, cfg, core::StructureKind::kSei);
  TextTable trade("SEI power/time trade (replication, energy invariant at " +
                  TextTable::num(sei_cost.energy_uj_per_picture()) +
                  " uJ/pic)");
  trade.header({"Replication", "Latency us", "Throughput kfps", "Power mW",
                "Area mm^2"});
  for (const auto& p : arch::replication_tradeoff(sei_cost, {1, 2, 4, 8})) {
    trade.row({std::to_string(p.factor) + "x", TextTable::num(p.latency_us, 1),
               TextTable::num(p.throughput_kfps, 1),
               TextTable::num(p.average_power_mw, 1),
               TextTable::num(p.area_mm2, 3)});
  }
  std::printf("\n%s", trade.str().c_str());
  telemetry::telemetry_flush(tel);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
